package mpi

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"mpimon/internal/faults"
	"mpimon/internal/telemetry"
)

// On testMachine (2 nodes x 2 sockets x 2 cores) cores 0-3 are node 0 and
// cores 4-7 are node 1, so placements below put the rank to kill on node 1.

func TestDeathUnblocksRecv(t *testing.T) {
	plan := &faults.Plan{Deaths: []faults.NodeDeath{{Node: 1, At: time.Millisecond}}}
	w := newTestWorld(t, 2, WithPlacement([]int{0, 4}), WithFaultPlan(plan))
	run(t, w, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			// Blocks until rank 1's death materializes, then must error
			// out rather than hang.
			_, err := c.Recv(1, 0, make([]byte, 8))
			if !errors.Is(err, ErrProcFailed) {
				t.Errorf("rank 0 recv: %v, want ErrProcFailed", err)
			}
		case 1:
			c.Proc().Compute(2 * time.Millisecond)
			err := c.Send(0, 0, []byte("late"))
			if !errors.Is(err, ErrProcFailed) {
				t.Errorf("rank 1 send after death: %v, want ErrProcFailed", err)
			}
			if !c.Proc().Failed() {
				t.Error("rank 1 should know it failed")
			}
			return err // a dead rank's ErrProcFailed exit must not fail the run
		}
		return nil
	})
	if !w.RankFailed(1) {
		t.Fatal("rank 1 not recorded as failed")
	}
	if got := w.FailedRanks(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("FailedRanks = %v, want [1]", got)
	}
	if got := w.DeadNodes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DeadNodes = %v, want [1]", got)
	}
}

func TestDeathUnblocksCollective(t *testing.T) {
	plan := &faults.Plan{Deaths: []faults.NodeDeath{{Node: 1, At: time.Millisecond}}}
	w := newTestWorld(t, 2, WithPlacement([]int{0, 4}), WithFaultPlan(plan))
	run(t, w, func(c *Comm) error {
		if c.Rank() == 1 {
			c.Proc().Compute(2 * time.Millisecond)
			return c.Barrier() // materializes the death
		}
		if err := c.Barrier(); !errors.Is(err, ErrProcFailed) {
			t.Errorf("survivor barrier: %v, want ErrProcFailed", err)
		}
		return nil
	})
}

func TestPreDeathMessageStillDelivered(t *testing.T) {
	plan := &faults.Plan{Deaths: []faults.NodeDeath{{Node: 1, At: time.Millisecond}}}
	w := newTestWorld(t, 2, WithPlacement([]int{0, 4}), WithFaultPlan(plan))
	run(t, w, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			// The message was sent before the death; it must arrive even
			// though the sender is failed by the time we receive.
			c.Proc().Compute(5 * time.Millisecond)
			buf := make([]byte, 8)
			st, err := c.Recv(1, 7, buf)
			if err != nil {
				t.Errorf("recv of pre-death message: %v", err)
				return nil
			}
			if string(buf[:st.Size]) != "bye" {
				t.Errorf("payload = %q, want \"bye\"", buf[:st.Size])
			}
			// The next receive has no pending match and must fail.
			if _, err := c.Recv(1, 7, buf); !errors.Is(err, ErrProcFailed) {
				t.Errorf("second recv: %v, want ErrProcFailed", err)
			}
		case 1:
			if err := c.Send(0, 7, []byte("bye")); err != nil {
				return err
			}
			c.Proc().Compute(2 * time.Millisecond)
			return c.Barrier()
		}
		return nil
	})
}

func TestAgreePartialFailure(t *testing.T) {
	plan := &faults.Plan{Deaths: []faults.NodeDeath{{Node: 1, At: time.Millisecond}}}
	w := newTestWorld(t, 4, WithPlacement([]int{0, 1, 2, 4}), WithFaultPlan(plan))
	var mu sync.Mutex
	results := make(map[int]uint32)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 3 {
			c.Proc().Compute(2 * time.Millisecond)
			_, err := c.Agree(0) // dies on entry, never contributes
			return err
		}
		flag := uint32(0b11)
		if c.Rank() == 1 {
			flag = 0b01
		}
		and, err := c.Agree(flag)
		if !errors.Is(err, ErrProcFailed) {
			t.Errorf("rank %d Agree: %v, want ErrProcFailed", c.Rank(), err)
		}
		mu.Lock()
		results[c.Rank()] = and
		mu.Unlock()
		return nil
	})
	if len(results) != 3 {
		t.Fatalf("got %d survivor results, want 3", len(results))
	}
	for r, and := range results {
		if and != 0b01 {
			t.Errorf("rank %d agreed on %#b, want 0b01", r, and)
		}
	}
}

func TestRevokeWakesBlockedRecv(t *testing.T) {
	w := newTestWorld(t, 3)
	run(t, w, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			c.Proc().Compute(time.Millisecond)
			if err := c.Revoke(); err != nil {
				return err
			}
			// Every later operation on the revoked comm fails locally.
			if err := c.Send(1, 0, []byte("x")); !errors.Is(err, ErrRevoked) {
				t.Errorf("send on revoked comm: %v, want ErrRevoked", err)
			}
		case 2:
			// Blocked on a sender that never sends; the revocation must
			// wake us even though no fault plan is installed.
			_, err := c.Recv(1, 0, make([]byte, 8))
			if !errors.Is(err, ErrRevoked) {
				t.Errorf("blocked recv on revoked comm: %v, want ErrRevoked", err)
			}
		}
		return nil
	})
}

func TestRecoveryRevokeShrinkAgree(t *testing.T) {
	plan := &faults.Plan{Deaths: []faults.NodeDeath{{Node: 1, At: time.Millisecond}}}
	tel := telemetry.New()
	w := newTestWorld(t, 4, WithPlacement([]int{0, 1, 2, 4}), WithFaultPlan(plan), WithTelemetry(tel))
	var mu sync.Mutex
	groups := make(map[int][]int)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 3 {
			c.Proc().Compute(2 * time.Millisecond)
			return c.Barrier()
		}
		// Survivors: the barrier fails (ErrProcFailed at the detector,
		// ErrRevoked at members woken by the revocation), then everyone
		// funnels into Shrink and continues on the new communicator.
		if err := c.Barrier(); err != nil {
			if !errors.Is(err, ErrProcFailed) && !errors.Is(err, ErrRevoked) {
				t.Errorf("rank %d barrier: %v", c.Rank(), err)
			}
			if err := c.Revoke(); err != nil {
				return err
			}
		}
		nc, err := c.Shrink()
		if err != nil {
			return err
		}
		mu.Lock()
		groups[c.Rank()] = nc.Group()
		mu.Unlock()
		if err := nc.Barrier(); err != nil {
			t.Errorf("rank %d barrier on shrunken comm: %v", c.Rank(), err)
		}
		and, err := nc.Agree(1)
		if err != nil || and != 1 {
			t.Errorf("rank %d Agree on shrunken comm: %d, %v", c.Rank(), and, err)
		}
		return nil
	})
	want := []int{0, 1, 2}
	for r, g := range groups {
		if len(g) != 3 || g[0] != want[0] || g[1] != want[1] || g[2] != want[2] {
			t.Errorf("rank %d shrunken group = %v, want %v", r, g, want)
		}
	}
	reg := tel.Registry()
	if n := reg.CounterTotal("mpimon_proc_failures_total"); n != 1 {
		t.Errorf("proc failures counter = %d, want 1", n)
	}
	if n := reg.CounterTotal("mpimon_comm_revocations_total"); n != 1 {
		t.Errorf("revocations counter = %d, want 1", n)
	}
	if n := reg.CounterTotal("mpimon_comm_shrinks_total"); n != 1 {
		t.Errorf("shrinks counter = %d, want 1", n)
	}
}

func TestRecvTimeout(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			// No one ever sends on tag 5: the deadline must fire.
			_, err := c.RecvTimeout(1, 5, make([]byte, 8), 50*time.Millisecond)
			if !errors.Is(err, ErrTimeout) {
				t.Errorf("RecvTimeout: %v, want ErrTimeout", err)
			}
			// A pending match is consumed without waiting out the deadline.
			buf := make([]byte, 8)
			st, err := c.RecvTimeout(1, 6, buf, 10*time.Second)
			if err != nil {
				t.Errorf("RecvTimeout with match: %v", err)
				return nil
			}
			if string(buf[:st.Size]) != "ok" {
				t.Errorf("payload = %q, want \"ok\"", buf[:st.Size])
			}
			return nil
		}
		return c.Send(0, 6, []byte("ok"))
	})
}

func TestFaultPlanDropsMessage(t *testing.T) {
	plan := &faults.Plan{Links: []faults.LinkRule{{SrcNode: -1, DstNode: -1, DropProb: 1}}}
	tel := telemetry.New()
	w := newTestWorld(t, 2, WithFaultPlan(plan), WithTelemetry(tel))
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, []byte("lost"))
		}
		_, err := c.RecvTimeout(0, 0, make([]byte, 8), 100*time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("recv of dropped message: %v, want ErrTimeout", err)
		}
		return nil
	})
	st := w.FaultInjector().Stats()
	if st.Drops == 0 {
		t.Fatal("injector recorded no drops")
	}
	if n := tel.Registry().CounterTotal("mpimon_fault_injections_total"); n == 0 {
		t.Fatal("fault injection counter not incremented")
	}
}

func TestFaultPlanDuplicatesMessage(t *testing.T) {
	plan := &faults.Plan{Links: []faults.LinkRule{{SrcNode: -1, DstNode: -1, DupProb: 1}}}
	w := newTestWorld(t, 2, WithFaultPlan(plan))
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 3, []byte("twice"))
		}
		a := make([]byte, 8)
		b := make([]byte, 8)
		sa, err := c.Recv(0, 3, a)
		if err != nil {
			return err
		}
		sb, err := c.Recv(0, 3, b) // the duplicate
		if err != nil {
			t.Errorf("recv of duplicate: %v", err)
			return nil
		}
		if !bytes.Equal(a[:sa.Size], b[:sb.Size]) || string(a[:sa.Size]) != "twice" {
			t.Errorf("payloads %q / %q, want both \"twice\"", a[:sa.Size], b[:sb.Size])
		}
		return nil
	})
	if st := w.FaultInjector().Stats(); st.Duplicates == 0 {
		t.Fatal("injector recorded no duplicates")
	}
}

func TestFaultPlanExtraLatency(t *testing.T) {
	base := func(plan *faults.Plan) time.Duration {
		var opts []Option
		if plan != nil {
			opts = append(opts, WithFaultPlan(plan))
		}
		w, err := NewWorld(testMachine(), 2, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var arrival time.Duration
		run(t, w, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, make([]byte, 64))
			}
			if _, err := c.Recv(0, 0, make([]byte, 64)); err != nil {
				return err
			}
			arrival = c.Proc().Clock()
			return nil
		})
		return arrival
	}
	clean := base(nil)
	spike := 10 * time.Millisecond
	slow := base(&faults.Plan{Links: []faults.LinkRule{{SrcNode: -1, DstNode: -1, ExtraLatency: spike}}})
	if got := slow - clean; got != spike {
		t.Fatalf("latency fault added %v of virtual time, want %v", got, spike)
	}
}

func TestErrHandlerInvokedAndInherited(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		handled := 0
		c.SetErrHandler(func(_ *Comm, err error) error {
			handled++
			return err
		})
		child, err := c.Dup()
		if err != nil {
			return err
		}
		if err := child.Revoke(); err != nil {
			return err
		}
		if err := child.Send((c.Rank()+1)%2, 0, []byte("x")); !errors.Is(err, ErrRevoked) {
			t.Errorf("send on revoked child: %v, want ErrRevoked", err)
		}
		if handled == 0 {
			t.Error("inherited error handler never invoked")
		}
		var me *MPIError
		if err := child.Send((c.Rank()+1)%2, 0, []byte("x")); !errors.As(err, &me) {
			t.Error("error is not an *MPIError")
		}
		return nil
	})
}
