package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestRequestTest(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Proc().Compute(time.Millisecond)
			return c.Send(1, 0, []byte{42})
		}
		req, err := c.Irecv(0, 0, make([]byte, 1))
		if err != nil {
			return err
		}
		// The sender may or may not have run yet; either way Wait must
		// deliver, and Test afterwards must keep reporting done.
		st, err := req.Wait()
		if err != nil {
			return err
		}
		if st.Size != 1 {
			return fmt.Errorf("status %+v", st)
		}
		if _, ok, _ := req.Test(); !ok {
			return errors.New("Test after completion should report done")
		}
		return nil
	})
}

func TestRequestTestSend(t *testing.T) {
	w := newTestWorld(t, 2, WithPlacement([]int{0, 4}))
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			req, err := c.Isend(1, 0, make([]byte, 1<<20)) // rendezvous size
			if err != nil {
				return err
			}
			// Injection takes virtual time; immediately after Isend the
			// clock has not reached freeAt.
			if _, ok, _ := req.Test(); ok {
				return errors.New("rendezvous send completed instantly")
			}
			c.Proc().Compute(10 * time.Millisecond)
			if _, ok, _ := req.Test(); !ok {
				return errors.New("send not complete after the injection window")
			}
			return nil
		}
		_, err := c.Recv(0, 0, make([]byte, 1<<20))
		return err
	})
}

func TestWaitany(t *testing.T) {
	w := newTestWorld(t, 3)
	run(t, w, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			r1, err := c.Irecv(1, 1, make([]byte, 1))
			if err != nil {
				return err
			}
			r2, err := c.Irecv(2, 2, make([]byte, 1))
			if err != nil {
				return err
			}
			seen := map[int]bool{}
			reqs := []*Request{r1, r2}
			for len(seen) < 2 {
				i, st, err := Waitany(reqs...)
				if err != nil {
					return err
				}
				if seen[i] {
					return fmt.Errorf("Waitany returned index %d twice", i)
				}
				seen[i] = true
				if st.Tag != i+1 {
					return fmt.Errorf("request %d has tag %d", i, st.Tag)
				}
				reqs[i] = nil
			}
			if _, _, err := Waitany(); err == nil {
				return errors.New("empty Waitany should fail")
			}
			return nil
		case 1:
			c.Proc().Compute(2 * time.Millisecond)
			return c.Send(0, 1, []byte{1})
		default:
			return c.Send(0, 2, []byte{2})
		}
	})
}
