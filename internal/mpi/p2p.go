package mpi

import (
	"fmt"

	"mpimon/internal/pml"
)

// Status describes a completed or probed receive.
type Status struct {
	// Source is the sender's rank in the communicator of the operation.
	Source int
	// Tag is the message tag.
	Tag int
	// Size is the message payload size in bytes.
	Size int
}

// Send transmits data to rank dst of the communicator with the given tag.
// In this runtime Send never blocks waiting for the receiver (buffered
// semantics); for large messages the virtual clock still advances by the
// injection time, modelling a rendezvous-style sender stall.
func (c *Comm) Send(dst, tag int, data []byte) error {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	return c.herr(c.send(dst, tag, cloneMsg(data), c.p.class()))
}

// SendN transmits a message carrying only a logical payload size, with no
// actual bytes. It prices, routes and monitors exactly like Send; it exists
// so communication-skeleton workloads (the NAS CG skeleton) can replay the
// real message sizes of a large run without allocating the data.
func (c *Comm) SendN(dst, tag, size int) error {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	if size < 0 {
		return fmt.Errorf("mpi: negative message size %d", size)
	}
	return c.herr(c.send(dst, tag, ownedMsg(nil, size), c.p.class()))
}

// send is the common path under Send/SendN/collectives/one-sided. It takes
// ownership of m (built with cloneMsg/ownedMsg/getMsg) and enqueues it at
// the destination; the consuming receive recycles it. The monitoring
// component records the message at the instant it is buffered to be sent,
// before the transfer itself — the same interposition point as the Open MPI
// pml monitoring component.
func (c *Comm) send(dst, tag int, m *message, class pml.Class) error {
	if err := c.checkRank(dst, "destination"); err != nil {
		m.release()
		return err
	}
	if tag < 0 {
		m.release()
		return fmt.Errorf("mpi: send tag %d must be non-negative", tag)
	}
	p := c.p
	w := p.world
	dstWorld := c.group[dst]
	dstProc := w.procs[dstWorld]
	size := m.size

	if w.ftOn.Load() {
		if err := c.preSend(dstWorld, "send"); err != nil {
			m.release()
			return err
		}
	}
	p.clock += int64(w.mach.SendOverhead)
	p.mon.Record(class, dstWorld, size, p.clock)
	sentAt := p.clock
	senderFree, arrival, fault := w.net.TransferF(p.core, dstProc.core, size, p.clock)
	if senderFree > p.clock {
		p.clock = senderFree
	}
	if p.tm != nil {
		uc := userCtx(c.ctx)
		cm, cb := p.tm.comm(uc)
		p.tm.agg.Add(cm, 1, p.clock)
		p.tm.agg.Add(cb, int64(size), p.clock)
		p.tr.Message(class.String(), uc, p.rank, dstWorld, int64(size), sentAt, arrival)
	}
	if fault.Drop {
		// The sender is charged and monitored as usual — the bytes left
		// the card — but the receiver never sees the message.
		m.release()
		return nil
	}
	m.src, m.tag, m.ctx = c.rank, tag, c.ctx
	m.sentAt, m.arrival = sentAt, arrival
	if fault.Duplicate {
		dstProc.queue.put(c.dupMsg(m, fault.DupArrival))
	}
	dstProc.queue.put(m)
	return nil
}

// dupMsg builds the spurious copy of a duplicated message (its own backing
// buffer: the two copies are consumed and recycled independently).
func (c *Comm) dupMsg(m *message, arrival int64) *message {
	var d *message
	if m.data == nil {
		d = ownedMsg(nil, m.size)
	} else {
		d = cloneMsg(m.data[:m.size])
	}
	d.src, d.tag, d.ctx = m.src, m.tag, m.ctx
	d.sentAt, d.arrival = m.sentAt, arrival
	return d
}

// Recv blocks until a message matching (src, tag) on this communicator
// arrives, copies at most len(buf) bytes of it into buf, and returns its
// Status. src may be AnySource and tag AnyTag. A nil buf discards the
// payload. Receiving a message shorter than buf is allowed; longer than buf
// is an error (truncation), as in MPI.
func (c *Comm) Recv(src, tag int, buf []byte) (Status, error) {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	st, err := c.recv(src, tag, buf)
	return st, c.herr(err)
}

func (c *Comm) recv(src, tag int, buf []byte) (Status, error) {
	if src != AnySource {
		if err := c.checkRank(src, "source"); err != nil {
			return Status{}, err
		}
	}
	p := c.p
	if p.world.ftOn.Load() {
		if err := c.preRecv("recv"); err != nil {
			return Status{}, err
		}
	}
	before := p.clock
	m, err := p.queue.take(c, src, tag)
	if err != nil {
		return Status{}, err
	}
	return c.recvFinish(m, before, buf)
}

// recvFinish consumes a matched message: clock update, telemetry, copy-out
// and recycling. Shared by Recv, RecvTimeout and Test.
func (c *Comm) recvFinish(m *message, before int64, buf []byte) (Status, error) {
	p := c.p
	if m.arrival > p.clock {
		p.clock = m.arrival
	}
	p.observeRecvTelemetry(m, before)
	p.clock += int64(p.world.mach.RecvOverhead)
	st := Status{Source: m.src, Tag: m.tag, Size: m.size}
	if buf != nil {
		if m.size > len(buf) {
			m.release()
			return st, fmt.Errorf("mpi: message of %d bytes truncated by %d-byte receive buffer", m.size, len(buf))
		}
		copy(buf, m.data)
	}
	m.release()
	return st, nil
}

// Probe blocks until a matching message is available and returns its
// Status without consuming it. The clock advances to the message arrival.
func (c *Comm) Probe(src, tag int) (Status, error) {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	if src != AnySource {
		if err := c.checkRank(src, "source"); err != nil {
			return Status{}, c.herr(err)
		}
	}
	p := c.p
	if p.world.ftOn.Load() {
		if err := c.preRecv("probe"); err != nil {
			return Status{}, c.herr(err)
		}
	}
	m, err := p.queue.peek(c, src, tag)
	if err != nil {
		return Status{}, c.herr(err)
	}
	if m.arrival > p.clock {
		p.clock = m.arrival
	}
	return Status{Source: m.src, Tag: m.tag, Size: m.size}, nil
}

// Iprobe is the nonblocking Probe; ok reports whether a message matched.
// The clock does not advance.
func (c *Comm) Iprobe(src, tag int) (Status, bool, error) {
	if src != AnySource {
		if err := c.checkRank(src, "source"); err != nil {
			return Status{}, false, err
		}
	}
	// A nonblocking peek: find without removal, under the queue lock.
	q := &c.p.queue
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, _, m := q.find(c.ctx, src, tag); m != nil {
		return Status{Source: m.src, Tag: m.tag, Size: m.size}, true, nil
	}
	return Status{}, false, nil
}

// Sendrecv performs a combined send to dst and receive from src, as
// MPI_Sendrecv. Because sends never block in this runtime, it is simply a
// send followed by a receive.
func (c *Comm) Sendrecv(dst, sendTag int, sendData []byte, src, recvTag int, recvBuf []byte) (Status, error) {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	if err := c.send(dst, sendTag, cloneMsg(sendData), c.p.class()); err != nil {
		return Status{}, c.herr(err)
	}
	st, err := c.recv(src, recvTag, recvBuf)
	return st, c.herr(err)
}

// SendrecvN is Sendrecv with logical sizes only (skeleton workloads).
func (c *Comm) SendrecvN(dst, sendTag, sendSize, src, recvTag int) (Status, error) {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	if err := c.send(dst, sendTag, ownedMsg(nil, sendSize), c.p.class()); err != nil {
		return Status{}, c.herr(err)
	}
	st, err := c.recv(src, recvTag, nil)
	return st, c.herr(err)
}

// Request is a handle on a nonblocking operation; complete it with Wait.
type Request struct {
	c      *Comm
	isSend bool
	done   bool
	// send completion
	freeAt int64
	// recv arguments
	src, tag int
	buf      []byte
	st       Status
	err      error
	// tracked marks requests counted in the telemetry in-flight gauge.
	tracked bool
}

// finish marks the request complete, releasing its in-flight gauge slot.
func (r *Request) finish() {
	r.done = true
	if r.tracked {
		r.c.p.tm.inflight.Dec()
	}
}

// Isend starts a nonblocking send. The sender is charged only the send
// overhead immediately; Wait advances the clock to the injection completion
// for rendezvous-sized messages, modelling communication/computation
// overlap.
func (c *Comm) Isend(dst, tag int, data []byte) (*Request, error) {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	req, err := c.isend(dst, tag, cloneMsg(data))
	return req, c.herr(err)
}

// IsendN is Isend with a logical payload size only.
func (c *Comm) IsendN(dst, tag, size int) (*Request, error) {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	if size < 0 {
		return nil, fmt.Errorf("mpi: negative message size %d", size)
	}
	req, err := c.isend(dst, tag, ownedMsg(nil, size))
	return req, c.herr(err)
}

func (c *Comm) isend(dst, tag int, m *message) (*Request, error) {
	if err := c.checkRank(dst, "destination"); err != nil {
		m.release()
		return nil, err
	}
	if tag < 0 {
		m.release()
		return nil, fmt.Errorf("mpi: send tag %d must be non-negative", tag)
	}
	p := c.p
	w := p.world
	dstWorld := c.group[dst]
	dstProc := w.procs[dstWorld]
	size := m.size

	if w.ftOn.Load() {
		if err := c.preSend(dstWorld, "isend"); err != nil {
			m.release()
			return nil, err
		}
	}
	class := p.class()
	p.clock += int64(w.mach.SendOverhead)
	p.mon.Record(class, dstWorld, size, p.clock)
	sentAt := p.clock
	senderFree, arrival, fault := w.net.TransferF(p.core, dstProc.core, size, p.clock)
	tracked := p.tm != nil
	if tracked {
		uc := userCtx(c.ctx)
		cm, cb := p.tm.comm(uc)
		p.tm.agg.Add(cm, 1, p.clock)
		p.tm.agg.Add(cb, int64(size), p.clock)
		p.tr.Message(class.String(), uc, p.rank, dstWorld, int64(size), sentAt, arrival)
		p.tm.inflight.Inc()
	}
	if fault.Drop {
		m.release()
		return &Request{c: c, isSend: true, freeAt: senderFree, tracked: tracked}, nil
	}
	m.src, m.tag, m.ctx = c.rank, tag, c.ctx
	m.sentAt, m.arrival = sentAt, arrival
	if fault.Duplicate {
		dstProc.queue.put(c.dupMsg(m, fault.DupArrival))
	}
	dstProc.queue.put(m)
	return &Request{c: c, isSend: true, freeAt: senderFree, tracked: tracked}, nil
}

// Irecv starts a nonblocking receive into buf; the matching and the clock
// update happen at Wait. Note the simplification relative to MPI: messages
// match in Wait order, not Irecv-posting order, which is indistinguishable
// for deterministic tag/source patterns.
func (c *Comm) Irecv(src, tag int, buf []byte) (*Request, error) {
	if src != AnySource {
		if err := c.checkRank(src, "source"); err != nil {
			return nil, err
		}
	}
	tracked := c.p.tm != nil
	if tracked {
		c.p.tm.inflight.Inc()
	}
	return &Request{c: c, isSend: false, src: src, tag: tag, buf: buf, tracked: tracked}, nil
}

// Wait completes the request, advancing the virtual clock accordingly.
func (r *Request) Wait() (Status, error) {
	if r.done {
		return r.st, r.err
	}
	r.finish()
	p := r.c.p
	t0 := p.enterMPI()
	defer p.leaveMPI(t0)
	if r.isSend {
		if r.freeAt > p.clock {
			p.clock = r.freeAt
		}
		return Status{}, nil
	}
	r.st, r.err = r.c.recv(r.src, r.tag, r.buf)
	r.err = r.c.herr(r.err)
	return r.st, r.err
}

// WaitAll completes every request, returning the first error.
func WaitAll(reqs ...*Request) error {
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// Test nonblockingly checks a request for completion (MPI_Test): ok
// reports whether it completed; when ok, the status is valid and the
// request is done. For sends, completion means the injection time has been
// reached on the virtual clock; for receives, that a matching message is
// queued (which is then consumed).
func (r *Request) Test() (Status, bool, error) {
	if r.done {
		return r.st, true, r.err
	}
	p := r.c.p
	if r.isSend {
		if r.freeAt > p.clock {
			return Status{}, false, nil
		}
		r.finish()
		return Status{}, true, nil
	}
	before := p.clock
	m, ok := p.queue.tryTake(r.c.ctx, r.src, r.tag)
	if !ok {
		// No pending match: a failed sender or a revoked communicator
		// means none can ever appear, so complete the request with the
		// error instead of letting the caller poll forever.
		if p.world.ftOn.Load() {
			if err := r.c.waitErr(r.src); err != nil {
				r.finish()
				r.err = r.c.herr(err)
				return Status{}, true, r.err
			}
		}
		return Status{}, false, nil
	}
	r.finish()
	if m.arrival > p.clock {
		p.clock = m.arrival
	}
	p.observeRecvTelemetry(m, before)
	p.clock += int64(p.world.mach.RecvOverhead)
	r.st = Status{Source: m.src, Tag: m.tag, Size: m.size}
	if r.buf != nil {
		if m.size > len(r.buf) {
			m.release()
			r.err = fmt.Errorf("mpi: message of %d bytes truncated by %d-byte receive buffer", m.size, len(r.buf))
			return r.st, true, r.err
		}
		copy(r.buf, m.data)
	}
	m.release()
	return r.st, true, nil
}

// Waitany blocks until one of the requests completes and returns its index
// and status (MPI_Waitany). Completed requests are skipped on subsequent
// calls by passing the remaining ones.
func Waitany(reqs ...*Request) (int, Status, error) {
	if len(reqs) == 0 {
		return -1, Status{}, fmt.Errorf("mpi: Waitany with no requests")
	}
	// Fast path: anything already completable without blocking.
	for {
		for i, r := range reqs {
			if r == nil {
				continue
			}
			if st, ok, err := r.Test(); ok {
				return i, st, err
			}
		}
		// Nothing ready: block on the first incomplete one. Blocking on
		// a specific request is the standard progression strategy here
		// because the virtual-time queue has no umbrella wait primitive.
		for i, r := range reqs {
			if r == nil || r.done {
				continue
			}
			st, err := r.Wait()
			return i, st, err
		}
		return -1, Status{}, fmt.Errorf("mpi: Waitany with only nil or completed requests")
	}
}
