package mpi

import (
	"strconv"

	"mpimon/internal/commitagg"
	"mpimon/internal/faults"
	"mpimon/internal/pml"
	"mpimon/internal/telemetry"
)

// This file wires the telemetry subsystem into the runtime. The contract
// is "disabled = a few nil checks": a World built without WithTelemetry
// leaves Proc.tr and Proc.tm nil and every hook below compiles down to a
// skipped branch (verified by exp.TelemetryOverhead).

// WithTelemetry attaches a telemetry hub to the world: every rank gets a
// span tracer and a pre-resolved set of metrics instruments, and the
// network reports NIC busy-waits into a per-node histogram. A nil hub is
// allowed and leaves telemetry disabled.
func WithTelemetry(tel *telemetry.Telemetry) Option {
	return func(w *World) { w.tel = tel }
}

// Telemetry returns the world's telemetry hub, or nil when disabled.
func (w *World) Telemetry() *telemetry.Telemetry { return w.tel }

// rankMetrics holds one process's pre-resolved instruments so the hot
// paths never touch the registry.
type rankMetrics struct {
	reg  *telemetry.Registry
	rank telemetry.Label

	// agg is the rank's commit-on-threshold shard: per-message counter
	// bumps land in rank-local padded cells and fold into the shared
	// registry counters only on commit (threshold, virtual interval, or
	// a scrape/snapshot barrier via the registry's flusher). This is
	// what removes the shared-cache-line traffic the per-message atomics
	// used to pay.
	agg *commitagg.Shard

	// Per-class message/byte counter cells, fed by a pml recorder so
	// they honour the monitoring level and suppression exactly like the
	// counters the introspection library reads.
	msgs  [pml.NumClasses]*commitagg.Cell
	bytes [pml.NumClasses]*commitagg.Cell

	msgSize  *telemetry.Histogram // payload bytes per monitored message
	recvWait *telemetry.Histogram // virtual ns blocked waiting for a message
	latency  *telemetry.Histogram // virtual send-to-arrival ns per received message
	inflight *telemetry.Gauge     // outstanding nonblocking requests

	// Per-communicator traffic counter cells, resolved lazily per
	// context id; the maps are owned by the rank goroutine.
	commMsgs  map[int]*commitagg.Cell
	commBytes map[int]*commitagg.Cell
}

// wireTelemetry is called by NewWorld after the processes exist.
func (w *World) wireTelemetry() {
	reg := w.tel.Registry()
	for r, p := range w.procs {
		p.tr = w.tel.Rank(r)
		m := &rankMetrics{
			reg:       reg,
			rank:      telemetry.L("rank", strconv.Itoa(r)),
			agg:       commitagg.NewShard(w.aggPol),
			commMsgs:  make(map[int]*commitagg.Cell),
			commBytes: make(map[int]*commitagg.Cell),
		}
		for cl := pml.Class(0); cl < pml.NumClasses; cl++ {
			class := telemetry.L("class", cl.String())
			m.msgs[cl] = m.agg.NewCell(counterSink(reg.Counter("mpimon_messages_total", m.rank, class)))
			m.bytes[cl] = m.agg.NewCell(counterSink(reg.Counter("mpimon_bytes_total", m.rank, class)))
		}
		m.msgSize = reg.Histogram("mpimon_message_size_bytes", telemetry.SizeBuckets, m.rank)
		m.recvWait = reg.Histogram("mpimon_recv_wait_ns", telemetry.TimeBuckets, m.rank)
		m.latency = reg.Histogram("mpimon_message_latency_ns", telemetry.TimeBuckets, m.rank)
		m.inflight = reg.Gauge("mpimon_inflight_requests", m.rank)
		p.tm = m
		// Every registry read (scrape, CounterTotal, export) is a commit
		// barrier for this rank's pending deltas.
		reg.AddFlusher(m.agg.Flush)
		p.mon.AddRecorder(func(class pml.Class, dst, size int, when int64) {
			m.agg.Add(m.msgs[class], 1, when)
			m.agg.Add(m.bytes[class], int64(size), when)
			m.msgSize.Observe(int64(size))
		})
	}
	nodes := w.mach.Topo.NumNodes()
	nicWait := make([]*telemetry.Histogram, nodes)
	for i := range nicWait {
		nicWait[i] = reg.Histogram("mpimon_nic_wait_ns", telemetry.TimeBuckets,
			telemetry.L("node", strconv.Itoa(i)))
	}
	w.net.SetWaitObserver(func(node int, waitNs int64) { nicWait[node].Observe(waitNs) })
	w.wireFaultTelemetry(reg)
}

// ftMetrics holds the fault-tolerance counters (cold paths only, so they
// are resolved once here rather than per rank).
type ftMetrics struct {
	procFailures *telemetry.Counter
	revokes      *telemetry.Counter
	shrinks      *telemetry.Counter
}

// wireFaultTelemetry registers the recovery counters and, when a fault
// injector is installed, mirrors its events into per-kind counters.
func (w *World) wireFaultTelemetry(reg *telemetry.Registry) {
	w.ftm = &ftMetrics{
		procFailures: reg.Counter("mpimon_proc_failures_total"),
		revokes:      reg.Counter("mpimon_comm_revocations_total"),
		shrinks:      reg.Counter("mpimon_comm_shrinks_total"),
	}
	if w.inj == nil {
		return
	}
	kinds := [...]*telemetry.Counter{
		faults.EventLatency:   reg.Counter("mpimon_fault_injections_total", telemetry.L("kind", "latency")),
		faults.EventBandwidth: reg.Counter("mpimon_fault_injections_total", telemetry.L("kind", "bandwidth")),
		faults.EventDrop:      reg.Counter("mpimon_fault_injections_total", telemetry.L("kind", "drop")),
		faults.EventDuplicate: reg.Counter("mpimon_fault_injections_total", telemetry.L("kind", "duplicate")),
	}
	w.inj.SetObserver(func(e faults.Event) {
		if int(e.Kind) < len(kinds) && kinds[e.Kind] != nil {
			kinds[e.Kind].Inc()
		}
	})
}

// Telemetry returns the process's span tracer, or nil when the world has
// no telemetry. Library layers above mpi (monitoring, reorder) use it to
// record their own lifecycle events and phase spans on this rank's
// timeline.
func (p *Proc) Telemetry() *telemetry.Rank { return p.tr }

// counterSink adapts a monotonically increasing counter to a commitagg
// sink; the batched deltas are always non-negative.
func counterSink(c *telemetry.Counter) func(int64) {
	return func(d int64) { c.Add(uint64(d)) }
}

// TelemetryAggStats sums the per-rank telemetry commit shards: how many
// counter updates the world recorded and how many registry folds they
// amortized to. Zero without telemetry.
func (w *World) TelemetryAggStats() commitagg.Stats {
	var st commitagg.Stats
	for _, p := range w.procs {
		if p.tm != nil {
			st = st.Add(p.tm.agg.Stats())
		}
	}
	return st
}

// MonitorAggStats sums the per-rank pml batched-fold counters (zero when
// the commit policy is eager — the direct path does not count).
func (w *World) MonitorAggStats() commitagg.Stats {
	var st commitagg.Stats
	for _, p := range w.procs {
		st = st.Add(p.mon.AggStats())
	}
	return st
}

// comm returns (creating on first use) the per-communicator traffic
// counter cells of a context id. Must be called from the rank goroutine.
func (m *rankMetrics) comm(ctx int) (*commitagg.Cell, *commitagg.Cell) {
	cm, ok := m.commMsgs[ctx]
	if !ok {
		l := telemetry.L("ctx", strconv.Itoa(ctx))
		cm = m.agg.NewCell(counterSink(m.reg.Counter("mpimon_comm_messages_total", m.rank, l)))
		m.commMsgs[ctx] = cm
		m.commBytes[ctx] = m.agg.NewCell(counterSink(m.reg.Counter("mpimon_comm_bytes_total", m.rank, l)))
	}
	return cm, m.commBytes[ctx]
}

// userCtx maps a message's transport context back to the communicator the
// user sees: collective-internal traffic travels on -(ctx+1).
func userCtx(ctx int) int {
	if ctx < 0 {
		return -ctx - 1
	}
	return ctx
}

// spanNoop is the shared disabled-path closure, so c.span costs no
// allocation when telemetry is off.
var spanNoop = func() {}

// span opens a collective (or other library-call) span at the current
// virtual time and returns the closure that ends it; use as
// `defer c.span("bcast")()`.
func (c *Comm) span(name string) func() {
	tr := c.p.tr
	if tr == nil {
		return spanNoop
	}
	p := c.p
	tr.Begin(name, telemetry.KindCollective, p.clock)
	return func() { tr.End(p.clock) }
}

// observeRecvTelemetry records the receive-side telemetry of a matched
// message: how long the receiver was (virtually) blocked, the
// send-to-arrival latency, and a wait span when the clock had to jump.
// before is the receiver's clock when it started waiting.
func (p *Proc) observeRecvTelemetry(m *message, before int64) {
	if p.tm == nil {
		return
	}
	waited := m.arrival - before
	if waited < 0 {
		waited = 0
	}
	p.tm.recvWait.Observe(waited)
	p.tm.latency.Observe(m.arrival - m.sentAt)
	if p.tr != nil && waited > 0 {
		p.tr.Range("recv.wait", telemetry.KindWait, before, m.arrival)
	}
}
