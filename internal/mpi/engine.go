package mpi

import (
	"errors"
	"fmt"
	"log"
	"sync"

	"mpimon/internal/netsim/event"
)

// Engine is the execution strategy of a World.Run: how the np rank programs
// are driven against the shared virtual-time state. Both engines present the
// exact same Comm API and — on configurations where the goroutine engine is
// itself deterministic — the exact same results; they differ in how a
// blocked rank waits.
//
//   - The goroutine engine (the original runtime) runs every rank as a free
//     goroutine; a blocked receive parks on a condition variable and the Go
//     scheduler interleaves ranks arbitrarily.
//   - The event engine runs ranks as resumable state machines driven off a
//     central virtual-time event heap: exactly one rank executes at a time,
//     a blocking point parks the rank and registers it with the scheduler,
//     and wake-ups dispatch in deterministic (time, rank, seq) order. This
//     removes all cross-rank host-level contention (queue mutexes and
//     condition broadcasts never contend), makes every run bit-replayable,
//     turns a cyclic wait into an immediate deadlock error instead of a
//     hang, and scales to worlds of 10⁴–10⁵ ranks (see docs/PERFORMANCE.md).
type Engine interface {
	// Name returns the engine's flag name ("goroutine" or "event").
	Name() string
	// run executes fn on every rank of the world and returns the joined
	// error, with the same aggregation semantics for both engines.
	run(w *World, fn func(c *Comm) error) error
}

// EngineGoroutine is the original goroutine-per-rank engine.
var EngineGoroutine Engine = goroutineEngine{}

// EngineEvent is the discrete-event engine: ranks scheduled off a central
// virtual-time heap, one at a time.
var EngineEvent Engine = eventEngine{}

// EngineAutoThreshold is the world size above which NewWorld selects the
// event engine when no explicit WithEngine option was given. Below it the
// goroutine engine remains the default (it exploits host parallelism, which
// wins on small worlds with heavy per-rank compute).
const EngineAutoThreshold = 8192

// EngineByName resolves an -engine flag value. "auto" (and "") yield nil,
// which WithEngine interprets as automatic selection by world size.
func EngineByName(name string) (Engine, error) {
	switch name {
	case "", "auto":
		return nil, nil
	case "goroutine":
		return EngineGoroutine, nil
	case "event":
		return EngineEvent, nil
	default:
		return nil, fmt.Errorf("mpi: unknown engine %q (want goroutine, event or auto)", name)
	}
}

// WithEngine selects the world's execution engine. A nil engine (the
// default) selects automatically: the goroutine engine up to
// EngineAutoThreshold ranks, the event engine above.
func WithEngine(e Engine) Option {
	return func(w *World) { w.eng = e }
}

// autoEngineOnce makes the automatic large-world engine switch announce
// itself exactly once per process, so batch sweeps do not spam the log.
var autoEngineOnce sync.Once

// pickEngine finalizes the world's engine after options were applied.
func (w *World) pickEngine() {
	if w.eng != nil {
		return
	}
	if w.size > EngineAutoThreshold {
		autoEngineOnce.Do(func() {
			log.Printf("mpi: world of %d ranks exceeds %d, selecting the event engine (override with WithEngine / -engine)",
				w.size, EngineAutoThreshold)
		})
		w.eng = EngineEvent
		return
	}
	w.eng = EngineGoroutine
}

// Engine returns the engine the world runs on.
func (w *World) Engine() Engine { return w.eng }

// EngineStats describes one completed (or running) Run's scheduling work.
type EngineStats struct {
	// Events is the number of scheduler dispatches (event engine; zero for
	// the goroutine engine, which has no central dispatcher).
	Events uint64
}

// EngineStats returns the world's scheduling statistics.
func (w *World) EngineStats() EngineStats {
	if w.ev == nil {
		return EngineStats{}
	}
	return EngineStats{Events: w.ev.events}
}

// rankBody runs one rank's program with the shared recover/abort wrapper.
func (w *World) rankBody(rank int, fn func(c *Comm) error, errs []error) {
	defer func() {
		if rec := recover(); rec != nil {
			errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, rec)
		}
		// A rank exiting because its own node died is a planned failure the
		// survivors can recover from, not a reason to tear the world down.
		if errs[rank] != nil && !w.RankFailed(rank) {
			w.abort()
		}
	}()
	errs[rank] = fn(w.worldComm(rank))
}

// collectErrs reports real failures: not the ErrAborted fallout they caused
// on other ranks, and not the deaths of ranks a fault plan killed (their
// ErrProcFailed exit is the expected way out) — unless fallout is all there
// is.
func (w *World) collectErrs(errs []error) error {
	var real []error
	for r, e := range errs {
		if e == nil || errors.Is(e, ErrAborted) {
			continue
		}
		if w.RankFailed(r) && errors.Is(e, ErrProcFailed) {
			continue
		}
		real = append(real, e)
	}
	if len(real) > 0 {
		return errors.Join(real...)
	}
	if w.aborted.Load() {
		return errors.Join(errs...)
	}
	return nil
}

// goroutineEngine is the original execution strategy: one free-running
// goroutine per rank, blocking on condition variables.
type goroutineEngine struct{}

func (goroutineEngine) Name() string { return "goroutine" }

func (goroutineEngine) run(w *World, fn func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			w.rankBody(rank, fn, errs)
		}(r)
	}
	wg.Wait()
	return w.collectErrs(errs)
}

// eventEngine executes the world as a discrete-event simulation.
type eventEngine struct{}

func (eventEngine) Name() string { return "event" }

func (eventEngine) run(w *World, fn func(c *Comm) error) error {
	s := &evScheduler{
		w:     w,
		ranks: make([]evRankState, w.size),
		sched: make(chan evMsg),
	}
	w.ev = s
	return s.run(fn)
}

// evWake is the reason a parked rank was resumed.
type evWake uint8

const (
	// evWakeRun: something the rank may be waiting on changed; re-evaluate.
	evWakeRun evWake = iota
	// evWakeTimeout: the virtual deadline of the wait passed.
	evWakeTimeout
	// evWakeDeadlock: the heap is empty and every live rank is parked — the
	// wait can never be satisfied.
	evWakeDeadlock
)

// evMsg is what a rank goroutine reports to the dispatcher when it yields:
// either it parked at a blocking point or its program finished.
type evMsg struct {
	rank     int
	finished bool
}

// evRankState is the scheduler's per-rank bookkeeping.
//
// Concurrency discipline: at any instant exactly one goroutine runs — the
// dispatcher or the single dispatched rank — and control transfers through
// the resume/sched channels, which carry the happens-before edges. All
// scheduler state (the heap, these fields, other ranks' clocks) is
// therefore accessed data-race-free without locks.
type evRankState struct {
	resume chan evWake
	// waitID is the generation of the rank's current (or next) wait; heap
	// items stamped with an older generation are stale and skipped.
	waitID uint64
	// blocked is true while the rank is parked waiting for a dispatch.
	blocked bool
	done    bool
	// wantAny marks a park that any arrival may unblock (agreement waits);
	// otherwise (wantCtx, wantSrc, wantTag) is the message envelope of the
	// receive the rank parked in, and noteArrival only wakes it for a
	// matching arrival. Without the filter a gather root parked on a
	// specific source is woken — and rescans its whole queue — once per
	// arrival from anyone, which turns an np-wide fan-in into O(np²)
	// message-match work.
	wantAny                   bool
	wantCtx, wantSrc, wantTag int
}

// evScheduler drives one Run of the event engine.
type evScheduler struct {
	w     *World
	q     event.Queue
	ranks []evRankState
	// sched is the yield channel: the running rank hands control back to
	// the dispatcher through it (unbuffered: the handoff is the
	// synchronization).
	sched chan evMsg
	// events counts dispatches, the engine's work metric (events/sec).
	events uint64
	live   int
}

func (s *evScheduler) run(fn func(c *Comm) error) error {
	w := s.w
	errs := make([]error, w.size)
	for r := 0; r < w.size; r++ {
		st := &s.ranks[r]
		st.resume = make(chan evWake, 1)
		st.blocked = true // waiting for the initial dispatch
	}
	s.live = w.size
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			// The rank is a coroutine: it runs only between a resume
			// receive and the next sched send. Its goroutine is merely the
			// carrier of the state machine's stack.
			<-s.ranks[rank].resume
			defer func() { s.sched <- evMsg{rank: rank, finished: true} }()
			w.rankBody(rank, fn, errs)
		}(r)
	}
	// Seed: every rank becomes runnable at virtual time zero, in rank
	// order (the deterministic tie-break).
	for r := 0; r < w.size; r++ {
		s.q.Push(0, int32(r), s.ranks[r].waitID, event.Wake)
	}

	for s.live > 0 {
		// An abort (rank failure, external watchdog) must unwind parked
		// ranks that have no pending events anymore.
		if w.aborted.Load() {
			if r := s.firstBlocked(); r >= 0 {
				s.dispatch(r, evWakeRun)
				continue
			}
		}
		if it, ok := s.popLive(); ok {
			reason := evWakeRun
			if it.Kind == event.Timeout {
				reason = evWakeTimeout
			}
			s.dispatch(int(it.Rank), reason)
			continue
		}
		// No pending event and nobody ran: every live rank is parked on a
		// wait nothing will ever satisfy. Surface the deadlock on the
		// lowest blocked rank; its error aborts the world and the abort
		// branch above unwinds the rest.
		r := s.firstBlocked()
		if r < 0 {
			// Defensive: live > 0 but nobody blocked cannot happen under
			// the single-runner discipline.
			panic("mpi: event scheduler lost track of its ranks")
		}
		s.dispatch(r, evWakeDeadlock)
	}
	return w.collectErrs(errs)
}

// popLive pops heap items until one targets a rank still parked on the
// generation the item was stamped with (lazy deletion of stale wake-ups).
func (s *evScheduler) popLive() (event.Item, bool) {
	for s.q.Len() > 0 {
		it := s.q.Pop()
		st := &s.ranks[it.Rank]
		if st.done || !st.blocked || it.ID != st.waitID {
			continue
		}
		return it, true
	}
	return event.Item{}, false
}

// firstBlocked returns the lowest-ranked parked rank, or -1.
func (s *evScheduler) firstBlocked() int {
	for r := range s.ranks {
		if s.ranks[r].blocked && !s.ranks[r].done {
			return r
		}
	}
	return -1
}

// dispatch resumes one parked rank and waits until it parks again or its
// program finishes. This is the single-runner handoff: between the resume
// send and the sched receive, the dispatched rank owns all scheduler state.
func (s *evScheduler) dispatch(rank int, reason evWake) {
	st := &s.ranks[rank]
	st.blocked = false
	// Bump the generation so wake-ups aimed at the wait that just ended
	// die on the heap; events pushed from here on target the next park.
	st.waitID++
	s.events++
	st.resume <- reason
	m := <-s.sched
	if m.finished {
		s.ranks[m.rank].done = true
		s.live--
	}
	// A parked rank set its own blocked flag before yielding.
}

// park suspends the calling rank until the dispatcher resumes it, returning
// the wake reason. Runs on the rank's goroutine, which is the current
// runner; deadlineAt ≥ 0 additionally schedules a Timeout at that virtual
// time for the wait that starts now. The caller must hold no locks shared
// with other ranks.
func (s *evScheduler) park(p *Proc, deadlineAt int64) evWake {
	s.ranks[p.rank].wantAny = true
	return s.parkYield(p, deadlineAt)
}

// parkRecv is park for a message wait: only an arrival matching the
// (ctx, src, tag) envelope wakes the rank (wildcards as in message.matches).
func (s *evScheduler) parkRecv(p *Proc, deadlineAt int64, ctx, src, tag int) evWake {
	st := &s.ranks[p.rank]
	st.wantAny = false
	st.wantCtx, st.wantSrc, st.wantTag = ctx, src, tag
	return s.parkYield(p, deadlineAt)
}

func (s *evScheduler) parkYield(p *Proc, deadlineAt int64) evWake {
	st := &s.ranks[p.rank]
	if deadlineAt >= 0 {
		s.q.Push(deadlineAt, int32(p.rank), st.waitID, event.Timeout)
	}
	st.blocked = true
	s.sched <- evMsg{rank: p.rank}
	return <-st.resume
}

// noteArrival schedules a wake-up for the owner of a queue that just
// received a message, if it is parked in a wait this message can satisfy:
// it becomes runnable when the message arrives (or immediately, if its
// clock is already past the arrival). Called by the sending rank, i.e. the
// current runner.
func (s *evScheduler) noteArrival(p *Proc, m *message) {
	st := &s.ranks[p.rank]
	if st.done || !st.blocked {
		return
	}
	if !st.wantAny && !m.matches(st.wantCtx, st.wantSrc, st.wantTag) {
		return
	}
	t := p.clock
	if m.arrival > t {
		t = m.arrival
	}
	s.q.Push(t, int32(p.rank), st.waitID, event.Wake)
}

// wakeRanks schedules a wake-up for every parked rank in group whose
// re-evaluation may now succeed (agreement seal), at no earlier than at.
// Called by the current runner.
func (s *evScheduler) wakeRanks(group []int, at int64) {
	for _, r := range group {
		st := &s.ranks[r]
		if st.done || !st.blocked {
			continue
		}
		t := s.w.procs[r].clock
		if at > t {
			t = at
		}
		s.q.Push(t, int32(r), st.waitID, event.Wake)
	}
}

// wakeAllBlocked schedules a wake-up for every parked rank (failure and
// revocation propagation). Called by the current runner.
func (s *evScheduler) wakeAllBlocked() {
	for r := range s.ranks {
		st := &s.ranks[r]
		if st.done || !st.blocked {
			continue
		}
		s.q.Push(s.w.procs[r].clock, int32(r), st.waitID, event.Wake)
	}
}
