package mpi

import (
	"errors"
	"fmt"
	"testing"
)

func TestPersistentPingPong(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		other := 1 - c.Rank()
		sendBuf := make([]byte, 8)
		recvBuf := make([]byte, 8)
		sreq, err := c.SendInit(other, 3, sendBuf)
		if err != nil {
			return err
		}
		rreq, err := c.RecvInit(other, 3, recvBuf)
		if err != nil {
			return err
		}
		for it := 0; it < 5; it++ {
			// The buffer is re-read each Start: update it.
			sendBuf[0] = byte(10*it + c.Rank())
			if err := StartAll(sreq, rreq); err != nil {
				return err
			}
			if err := WaitAllPersistent(sreq, rreq); err != nil {
				return err
			}
			if recvBuf[0] != byte(10*it+other) {
				return fmt.Errorf("iteration %d: got %d, want %d", it, recvBuf[0], 10*it+other)
			}
		}
		return nil
	})
}

func TestPersistentStateMachine(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		other := 1 - c.Rank()
		req, err := c.SendInit(other, 0, make([]byte, 1))
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err == nil {
			return errors.New("Wait before Start should fail")
		}
		if err := req.Start(); err != nil {
			return err
		}
		if err := req.Start(); err == nil {
			return errors.New("double Start should fail")
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		// Drain the peer's message.
		if _, err := c.Recv(other, 0, nil); err != nil {
			return err
		}
		// Reusable after completion.
		return req.Start()
	})
	// Note: the final Start leaves a message in flight; the world ends
	// immediately after, which is fine (no receiver is waiting).
}

func TestPersistentInitValidation(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if _, err := c.SendInit(9, 0, nil); err == nil {
			return errors.New("bad destination should fail")
		}
		if _, err := c.SendInit(0, -1, nil); err == nil {
			return errors.New("bad tag should fail")
		}
		if _, err := c.RecvInit(9, 0, nil); err == nil {
			return errors.New("bad source should fail")
		}
		if _, err := c.RecvInit(AnySource, AnyTag, nil); err != nil {
			return err
		}
		return nil
	})
}

func TestPersistentMonitored(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			req, err := c.SendInit(1, 0, make([]byte, 256))
			if err != nil {
				return err
			}
			for i := 0; i < 3; i++ {
				if err := req.Start(); err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 3; i++ {
			if _, err := c.Recv(0, 0, nil); err != nil {
				return err
			}
		}
		return nil
	})
	counts := make([]uint64, 2)
	w.Proc(0).Monitor().Counts(0 /* pml.P2P */, counts)
	if counts[1] != 3 {
		t.Fatalf("persistent sends monitored %d times, want 3", counts[1])
	}
}
