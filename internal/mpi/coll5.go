package mpi

// Bandwidth-optimal collective algorithms of the portfolio (see
// internal/coll): the ring allreduce, the Rabenseifner allreduce
// (reduce-scatter by recursive halving + allgather by recursive doubling),
// and the Bruck alltoallv. Like every other collective they decompose into
// point-to-point messages on the collective context, so the monitoring
// layer observes their real traffic pattern — which differs per algorithm,
// and is exactly what the autotuner's cost tables capture.

import (
	"encoding/binary"
	"fmt"
)

// Tags of this file (the previous file in the tag sequence, coll4.go, ends
// at 17 << 20).
const (
	tagRing  = 18 << 20 // AllreduceRing rounds
	tagRab   = 19 << 20 // AllreduceRab fold/exchange/unfold
	tagBruck = 20 << 20 // AlltoallvBruck rounds
)

// checkReduceBufs validates an allreduce buffer pair: equal length, a
// whole number of dt elements.
func (c *Comm) checkReduceBufs(send, recv []byte, dt Datatype) error {
	if len(recv) != len(send) {
		return fmt.Errorf("mpi: allreduce buffers differ in length (%d vs %d)", len(send), len(recv))
	}
	if len(send)%dt.Size() != 0 {
		return fmt.Errorf("mpi: allreduce buffer of %d bytes is not a multiple of %s size %d", len(send), dt, dt.Size())
	}
	return nil
}

// AllreduceRing performs an allreduce with the ring (reduce-scatter +
// allgather) algorithm: 2(n-1) neighbour exchanges of one n-th of the
// vector each. Every rank sends 2·(n-1)/n of the buffer in total, the
// bandwidth-optimal volume, at the price of a latency term linear in n —
// the classic choice for long vectors on large groups. Works for any
// group size; blocks are balanced element ranges (possibly empty).
func (c *Comm) AllreduceRing(send, recv []byte, dt Datatype, op Op) error {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	defer c.span("allreduce.ring")()
	c.p.beginInternal()
	defer c.p.endInternal()
	return c.herr(c.allreduceRing(send, recv, dt, op))
}

func (c *Comm) allreduceRing(send, recv []byte, dt Datatype, op Op) error {
	if err := c.checkReduceBufs(send, recv, dt); err != nil {
		return err
	}
	n := len(c.group)
	copy(recv, send)
	if n == 1 {
		return nil
	}
	es := dt.Size()
	elems := len(send) / es
	// Block i covers elements [elems*i/n, elems*(i+1)/n): balanced, and
	// identical on every rank.
	lo := func(i int) int { return elems * i / n * es }
	maxBlk := 0
	for i := 0; i < n; i++ {
		if b := lo(i+1) - lo(i); b > maxBlk {
			maxBlk = b
		}
	}
	ctx := c.collCtx()
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	tmp := make([]byte, maxBlk)

	// Reduce-scatter: in round s, pass the partial block (rank-s) to the
	// right and fold the arriving partial into block (rank-s-1). After
	// n-1 rounds, rank r holds the complete reduction of block (r+1)%n.
	for s := 0; s < n-1; s++ {
		si := (c.rank - s + n) % n
		ri := (c.rank - s - 1 + n) % n
		if err := c.sendCopyOn(ctx, right, tagRing+s, recv[lo(si):lo(si+1)]); err != nil {
			return err
		}
		buf := tmp[:lo(ri+1)-lo(ri)]
		if _, err := c.recvOn(ctx, left, tagRing+s, buf); err != nil {
			return err
		}
		if err := reduceInto(recv[lo(ri):lo(ri+1)], buf, dt, op); err != nil {
			return err
		}
	}
	// Allgather: circulate the completed blocks the other n-1 rounds.
	for s := 0; s < n-1; s++ {
		si := (c.rank + 1 - s + n) % n
		ri := (c.rank - s + n) % n
		if err := c.sendCopyOn(ctx, right, tagRing+n+s, recv[lo(si):lo(si+1)]); err != nil {
			return err
		}
		if _, err := c.recvOn(ctx, left, tagRing+n+s, recv[lo(ri):lo(ri+1)]); err != nil {
			return err
		}
	}
	return nil
}

// AllreduceRab performs an allreduce with Rabenseifner's algorithm: a
// reduce-scatter by recursive vector halving, then an allgather by
// recursive doubling — log2(n) rounds each, moving 2·(n-1)/n of the buffer
// per rank like the ring but with a logarithmic latency term. Non-power-
// of-two groups apply the standard pre/post folding steps (as AllreduceRD
// does), so any group size works.
func (c *Comm) AllreduceRab(send, recv []byte, dt Datatype, op Op) error {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	defer c.span("allreduce.rab")()
	c.p.beginInternal()
	defer c.p.endInternal()
	return c.herr(c.allreduceRab(send, recv, dt, op))
}

func (c *Comm) allreduceRab(send, recv []byte, dt Datatype, op Op) error {
	if err := c.checkReduceBufs(send, recv, dt); err != nil {
		return err
	}
	n := len(c.group)
	copy(recv, send)
	if n == 1 {
		return nil
	}
	es := dt.Size()
	elems := len(send) / es
	ctx := c.collCtx()

	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2

	// Pre-step: the first 2*rem ranks fold pairwise so pof2 ranks hold
	// partial results (even ranks sit out until the post-step).
	newRank := -1
	switch {
	case c.rank < 2*rem && c.rank%2 == 0:
		if err := c.sendCopyOn(ctx, c.rank+1, tagRab, recv); err != nil {
			return err
		}
	case c.rank < 2*rem:
		buf := make([]byte, len(recv))
		if _, err := c.recvOn(ctx, c.rank-1, tagRab, buf); err != nil {
			return err
		}
		if err := reduceInto(recv, buf, dt, op); err != nil {
			return err
		}
		newRank = c.rank / 2
	default:
		newRank = c.rank - rem
	}
	toReal := func(nr int) int {
		if nr < rem {
			return 2*nr + 1 // odd ranks of the folded region hold the data
		}
		return nr + rem
	}

	// level records one halving step so the doubling phase can replay it
	// in reverse; ranges are element indices.
	type level struct{ plo, phi, lo, hi int }
	var levels []level
	if newRank >= 0 {
		// Reduce-scatter by recursive halving: at each step, partners
		// split the current range in half, ship the half they give up,
		// and fold the half they keep.
		lvLo, lvHi := 0, elems
		for mask := pof2 >> 1; mask >= 1; mask >>= 1 {
			peer := toReal(newRank ^ mask)
			mid := lvLo + (lvHi-lvLo)/2
			var sLo, sHi, kLo, kHi int
			if newRank&mask == 0 {
				sLo, sHi, kLo, kHi = mid, lvHi, lvLo, mid
			} else {
				sLo, sHi, kLo, kHi = lvLo, mid, mid, lvHi
			}
			buf := make([]byte, (kHi-kLo)*es)
			if _, err := c.sendrecvOn(ctx, peer, tagRab+2*mask, recv[sLo*es:sHi*es], peer, tagRab+2*mask, buf); err != nil {
				return err
			}
			if err := reduceInto(recv[kLo*es:kHi*es], buf, dt, op); err != nil {
				return err
			}
			levels = append(levels, level{plo: lvLo, phi: lvHi, lo: kLo, hi: kHi})
			lvLo, lvHi = kLo, kHi
		}
		// Allgather by recursive doubling: replay the levels in reverse;
		// at each step the partner holds exactly the sibling half of the
		// parent range.
		for i := len(levels) - 1; i >= 0; i-- {
			lv := levels[i]
			mask := pof2 >> (i + 1)
			peer := toReal(newRank ^ mask)
			pLo, pHi := lv.phi, lv.phi
			if lv.lo == lv.plo {
				pLo, pHi = lv.hi, lv.phi
			} else {
				pLo, pHi = lv.plo, lv.lo
			}
			if _, err := c.sendrecvOn(ctx, peer, tagRab+2*mask+1, recv[lv.lo*es:lv.hi*es], peer, tagRab+2*mask+1, recv[pLo*es:pHi*es]); err != nil {
				return err
			}
		}
	}

	// Post-step: folded-out even ranks get the full result from their
	// partner.
	if c.rank < 2*rem {
		if c.rank%2 == 0 {
			if _, err := c.recvOn(ctx, c.rank+1, tagRab+1, recv); err != nil {
				return err
			}
		} else {
			if err := c.sendCopyOn(ctx, c.rank-1, tagRab+1, recv); err != nil {
				return err
			}
		}
	}
	return nil
}

// AlltoallvBruck exchanges variable-length blocks with the Bruck
// algorithm: ceil(log2 n) store-and-forward rounds of packed frames
// instead of the pairwise exchange's n-1 rounds. Rank r first stages its
// block for destination (r+j)%n at relative index j; round k ships every
// staged block whose index has bit k set to rank (r+2^k)%n. Fewer, larger
// messages — the latency-optimal choice for many small blocks, and a
// different traffic matrix than Alltoallv, which is why the portfolio
// exposes both.
func (c *Comm) AlltoallvBruck(send []byte, scounts, sdispls []int, recv []byte, rcounts, rdispls []int) error {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	defer c.span("alltoallv.bruck")()
	c.p.beginInternal()
	defer c.p.endInternal()
	return c.herr(c.alltoallvBruck(send, scounts, sdispls, recv, rcounts, rdispls))
}

func (c *Comm) alltoallvBruck(send []byte, scounts, sdispls []int, recv []byte, rcounts, rdispls []int) error {
	n := len(c.group)
	if err := c.checkAlltoallvArgs(send, scounts, sdispls, recv, rcounts, rdispls); err != nil {
		return err
	}
	copy(recv[rdispls[c.rank]:rdispls[c.rank]+rcounts[c.rank]], send[sdispls[c.rank]:sdispls[c.rank]+scounts[c.rank]])
	if n == 1 {
		return nil
	}
	ctx := c.collCtx()

	// staging[j] holds the block currently travelling at relative index
	// j; initially my block for destination (rank+j)%n, finally the block
	// from source (rank-j+n)%n addressed to me.
	staging := make([][]byte, n)
	for j := 1; j < n; j++ {
		d := (c.rank + j) % n
		staging[j] = append([]byte(nil), send[sdispls[d]:sdispls[d]+scounts[d]]...)
	}

	round := 0
	for mask := 1; mask < n; mask, round = mask<<1, round+1 {
		dst := (c.rank + mask) % n
		src := (c.rank - mask + n) % n
		// Pack every staged block whose index has this round's bit set
		// into one frame: uvarint block count, then {uvarint index,
		// uvarint length, payload} triples in ascending index order.
		cnt := 0
		for j := 1; j < n; j++ {
			if j&mask != 0 {
				cnt++
			}
		}
		frame := binary.AppendUvarint(nil, uint64(cnt))
		for j := 1; j < n; j++ {
			if j&mask != 0 {
				frame = binary.AppendUvarint(frame, uint64(j))
				frame = binary.AppendUvarint(frame, uint64(len(staging[j])))
				frame = append(frame, staging[j]...)
			}
		}
		if err := c.sendOn(ctx, dst, tagBruck+round, frame, len(frame)); err != nil {
			return err
		}
		st, err := c.probeOn(ctx, src, tagBruck+round)
		if err != nil {
			return err
		}
		in := make([]byte, st.Size)
		if _, err := c.recvOn(ctx, src, tagBruck+round, in); err != nil {
			return err
		}
		got, in, err := bruckUvarint(in)
		if err != nil {
			return err
		}
		for b := uint64(0); b < got; b++ {
			var j, blen uint64
			if j, in, err = bruckUvarint(in); err != nil {
				return err
			}
			if blen, in, err = bruckUvarint(in); err != nil {
				return err
			}
			if j == 0 || j >= uint64(n) || blen > uint64(len(in)) {
				return fmt.Errorf("mpi: bruck frame from rank %d corrupt (index %d, length %d, %d bytes left)", src, j, blen, len(in))
			}
			staging[j] = append(staging[j][:0], in[:blen]...)
			in = in[blen:]
		}
		if len(in) != 0 {
			return fmt.Errorf("mpi: bruck frame from rank %d has %d trailing bytes", src, len(in))
		}
	}

	for s := 0; s < n; s++ {
		if s == c.rank {
			continue
		}
		j := (c.rank - s + n) % n
		if len(staging[j]) != rcounts[s] {
			return fmt.Errorf("mpi: bruck alltoallv rank %d sent %d bytes, expected %d", s, len(staging[j]), rcounts[s])
		}
		copy(recv[rdispls[s]:rdispls[s]+rcounts[s]], staging[j])
	}
	return nil
}

// bruckUvarint decodes one uvarint from a Bruck frame, returning the rest.
func bruckUvarint(b []byte) (uint64, []byte, error) {
	v, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, nil, fmt.Errorf("mpi: bruck frame truncated")
	}
	return v, b[k:], nil
}
