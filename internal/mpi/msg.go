package mpi

import (
	"sync"
	"sync/atomic"
	"time"
)

// message is one in-flight point-to-point message. src is the sender's rank
// in the communicator identified by ctx; arrival is the virtual time at
// which the last byte reaches the receiver. data may be nil for messages
// with a logical size only (communication-skeleton workloads).
type message struct {
	src     int
	tag     int
	ctx     int
	size    int
	data    []byte
	arrival int64
	sentAt  int64 // sender's virtual clock at injection (telemetry latency)
	// seq is the message's global arrival number in its receive queue,
	// stamped by put: wildcard receives use it to pick the earliest match
	// across the per-sender buckets.
	seq uint64
	// pclass is the sync.Pool class the message recycles through after the
	// consuming receive (see bufpool.go); poolNone disables recycling.
	pclass int8
}

func (m *message) matches(ctx, src, tag int) bool {
	return m.ctx == ctx &&
		(src == AnySource || m.src == src) &&
		(tag == AnyTag || m.tag == tag)
}

// msgQueue is a process's unordered-by-peer, FIFO-per-peer incoming queue.
// Senders append from their own goroutines; the owning process blocks in
// take until a match appears. An unbounded queue means Send never blocks on
// the receiver, which keeps the virtual-time simulation deadlock-free for
// programs that would deadlock only through rendezvous flow control.
//
// Messages are indexed by (ctx, src) bucket so a specific-source receive
// matches without scanning unrelated traffic: an np-wide fan-in drained in
// source order (the streamed gathers) would otherwise rescan the whole
// backlog per receive — O(np²) match work at np = 65536. Wildcard receives
// pick the bucket head with the lowest arrival seq, which is exactly the
// first match the historical single-list scan would have returned.
//
// The blocking strategy depends on the world's engine: under the goroutine
// engine a waiter parks on the condition variable; under the event engine
// it parks with the central scheduler and a sender's put schedules the
// wake-up on the virtual-time heap (engine.go).
type msgQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buckets map[uint64][]*message
	seq     uint64 // next arrival number
	count   int    // total queued
	// owner is the process this queue belongs to (the only taker).
	owner *Proc
	// aborted points at the world's abort flag: when another rank fails,
	// blocked receivers must wake up and bail out instead of hanging.
	aborted *atomic.Bool
}

// pairKey indexes a bucket. ctx and src are small non-negative ints, so
// the packing is injective.
func pairKey(ctx, src int) uint64 {
	return uint64(uint32(ctx))<<32 | uint64(uint32(src))
}

func (q *msgQueue) init(owner *Proc, aborted *atomic.Bool) {
	q.cond = sync.NewCond(&q.mu)
	q.owner = owner
	q.aborted = aborted
}

func (q *msgQueue) put(m *message) {
	q.mu.Lock()
	if q.buckets == nil {
		q.buckets = make(map[uint64][]*message)
	}
	m.seq = q.seq
	q.seq++
	k := pairKey(m.ctx, m.src)
	q.buckets[k] = append(q.buckets[k], m)
	q.count++
	q.mu.Unlock()
	q.cond.Broadcast()
	if ev := q.owner.world.ev; ev != nil {
		// Event engine: the caller is the current runner; make the parked
		// owner runnable at the message's arrival time.
		ev.noteArrival(q.owner, m)
	}
}

// find locates the first queued match of (ctx, src, tag) — the earliest
// arrival among matches, as in MPI matching order — without removing it.
// Caller holds q.mu. A miss returns a nil message.
func (q *msgQueue) find(ctx, src, tag int) (key uint64, idx int, m *message) {
	if src != AnySource {
		k := pairKey(ctx, src)
		for i, c := range q.buckets[k] {
			if tag == AnyTag || c.tag == tag {
				return k, i, c
			}
		}
		return 0, 0, nil
	}
	for k, b := range q.buckets {
		if len(b) == 0 {
			// Drained bucket kept for its append capacity; prune it here,
			// off the specific-source fast path.
			delete(q.buckets, k)
			continue
		}
		if b[0].ctx != ctx {
			continue
		}
		for i, c := range b {
			if tag != AnyTag && c.tag != tag {
				continue
			}
			// First tag match in a bucket is its earliest (FIFO per pair).
			if m == nil || c.seq < m.seq {
				key, idx, m = k, i, c
			}
			break
		}
	}
	return key, idx, m
}

// removeAt takes message idx of bucket key out of the queue. Popping the
// bucket head — the only case FIFO traffic produces — slides or truncates
// the slice instead of copying the tail.
func (q *msgQueue) removeAt(key uint64, idx int) *message {
	b := q.buckets[key]
	m := b[idx]
	switch {
	case idx == 0 && len(b) == 1:
		// Keep the empty bucket and its capacity: a ping-pong pair would
		// otherwise reallocate the bucket on every message.
		b[0] = nil
		b = b[:0]
	case idx == 0:
		b[0] = nil
		b = b[1:]
	default:
		b = append(b[:idx], b[idx+1:]...)
	}
	q.buckets[key] = b
	q.count--
	return m
}

// take removes and returns the first queued message matching (c.ctx, src,
// tag), blocking until one arrives. First-queued order preserves MPI's
// non-overtaking guarantee between a fixed sender/receiver pair. It
// returns ErrAborted if the world aborts while waiting, and an MPIError
// when the wait can never be satisfied because of a failure or revocation
// (c.waitErr); a pending match is always delivered before either.
func (q *msgQueue) take(c *Comm, src, tag int) (*message, error) {
	if ev := q.owner.world.ev; ev != nil {
		return q.takeEvent(ev, c, src, tag, -1)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if k, i, m := q.find(c.ctx, src, tag); m != nil {
			return q.removeAt(k, i), nil
		}
		if q.aborted.Load() {
			return nil, ErrAborted
		}
		if err := c.waitErr(src); err != nil {
			return nil, err
		}
		q.cond.Wait()
	}
}

// takeEvent is the event-engine take (and takeDeadline, with deadlineAt ≥
// 0 in virtual ns): instead of waiting on the condition variable, the
// owner parks with the scheduler and re-scans on each wake-up. The queue
// lock is never held across a park — the next runner may be a sender into
// this very queue.
func (q *msgQueue) takeEvent(ev *evScheduler, c *Comm, src, tag int, deadlineAt int64) (*message, error) {
	for {
		q.mu.Lock()
		if k, i, m := q.find(c.ctx, src, tag); m != nil {
			mm := q.removeAt(k, i)
			q.mu.Unlock()
			return mm, nil
		}
		q.mu.Unlock()
		if q.aborted.Load() {
			return nil, ErrAborted
		}
		if err := c.waitErr(src); err != nil {
			return nil, err
		}
		if deadlineAt >= 0 && q.owner.clock >= deadlineAt {
			return nil, timeoutErr("recv")
		}
		switch ev.parkRecv(q.owner, deadlineAt, c.ctx, src, tag) {
		case evWakeTimeout:
			// Advance to the deadline; a message that arrived exactly at
			// it is still delivered by the re-scan, otherwise the check
			// above returns ErrTimeout.
			if deadlineAt > q.owner.clock {
				q.owner.clock = deadlineAt
			}
		case evWakeDeadlock:
			return nil, deadlockErr("recv")
		}
	}
}

// takeDeadline is take with a deadline, after which it returns ErrTimeout.
// Under the goroutine engine the deadline is wall clock (a real timer);
// under the event engine it is virtual — the wait expires when the owner's
// virtual clock would reach now+d, which keeps timeouts deterministic and
// replayable. The timer allocation is off the fault-free hot path.
func (q *msgQueue) takeDeadline(c *Comm, src, tag int, d time.Duration) (*message, error) {
	if ev := q.owner.world.ev; ev != nil {
		return q.takeEvent(ev, c, src, tag, q.owner.clock+int64(d))
	}
	var expired atomic.Bool
	timer := time.AfterFunc(d, func() {
		// Flip the flag under the queue lock so a waiter between its
		// check and cond.Wait cannot miss the wakeup.
		q.mu.Lock()
		expired.Store(true)
		q.mu.Unlock()
		q.cond.Broadcast()
	})
	defer timer.Stop()
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if k, i, m := q.find(c.ctx, src, tag); m != nil {
			return q.removeAt(k, i), nil
		}
		if q.aborted.Load() {
			return nil, ErrAborted
		}
		if err := c.waitErr(src); err != nil {
			return nil, err
		}
		if expired.Load() {
			return nil, timeoutErr("recv")
		}
		q.cond.Wait()
	}
}

// peek blocks until a matching message is queued and returns it without
// removing it (Probe); error semantics as in take.
func (q *msgQueue) peek(c *Comm, src, tag int) (*message, error) {
	if ev := q.owner.world.ev; ev != nil {
		return q.peekEvent(ev, c, src, tag)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if _, _, m := q.find(c.ctx, src, tag); m != nil {
			return m, nil
		}
		if q.aborted.Load() {
			return nil, ErrAborted
		}
		if err := c.waitErr(src); err != nil {
			return nil, err
		}
		q.cond.Wait()
	}
}

// peekEvent is the event-engine peek: same park/re-scan protocol as
// takeEvent, without removing the match.
func (q *msgQueue) peekEvent(ev *evScheduler, c *Comm, src, tag int) (*message, error) {
	for {
		q.mu.Lock()
		if _, _, m := q.find(c.ctx, src, tag); m != nil {
			q.mu.Unlock()
			return m, nil
		}
		q.mu.Unlock()
		if q.aborted.Load() {
			return nil, ErrAborted
		}
		if err := c.waitErr(src); err != nil {
			return nil, err
		}
		if ev.parkRecv(q.owner, -1, c.ctx, src, tag) == evWakeDeadlock {
			return nil, deadlockErr("probe")
		}
	}
}

// tryTake is take without blocking; ok reports whether a match was found.
func (q *msgQueue) tryTake(ctx, src, tag int) (*message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if k, i, m := q.find(ctx, src, tag); m != nil {
		return q.removeAt(k, i), true
	}
	return nil, false
}

// pending returns the number of queued messages (diagnostics and tests).
func (q *msgQueue) pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}
