package mpi

import (
	"sync"
	"sync/atomic"
	"time"
)

// message is one in-flight point-to-point message. src is the sender's rank
// in the communicator identified by ctx; arrival is the virtual time at
// which the last byte reaches the receiver. data may be nil for messages
// with a logical size only (communication-skeleton workloads).
type message struct {
	src     int
	tag     int
	ctx     int
	size    int
	data    []byte
	arrival int64
	sentAt  int64 // sender's virtual clock at injection (telemetry latency)
	// pclass is the sync.Pool class the message recycles through after the
	// consuming receive (see bufpool.go); poolNone disables recycling.
	pclass int8
}

func (m *message) matches(ctx, src, tag int) bool {
	return m.ctx == ctx &&
		(src == AnySource || m.src == src) &&
		(tag == AnyTag || m.tag == tag)
}

// msgQueue is a process's unordered-by-peer, FIFO-per-peer incoming queue.
// Senders append from their own goroutines; the owning process blocks in
// take until a match appears. An unbounded queue means Send never blocks on
// the receiver, which keeps the virtual-time simulation deadlock-free for
// programs that would deadlock only through rendezvous flow control.
type msgQueue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []*message
	// aborted points at the world's abort flag: when another rank fails,
	// blocked receivers must wake up and bail out instead of hanging.
	aborted *atomic.Bool
}

func (q *msgQueue) init(aborted *atomic.Bool) {
	q.cond = sync.NewCond(&q.mu)
	q.aborted = aborted
}

func (q *msgQueue) put(m *message) {
	q.mu.Lock()
	q.items = append(q.items, m)
	q.mu.Unlock()
	q.cond.Broadcast()
}

// take removes and returns the first queued message matching (c.ctx, src,
// tag), blocking until one arrives. First-queued order preserves MPI's
// non-overtaking guarantee between a fixed sender/receiver pair. It
// returns ErrAborted if the world aborts while waiting, and an MPIError
// when the wait can never be satisfied because of a failure or revocation
// (c.waitErr); a pending match is always delivered before either.
func (q *msgQueue) take(c *Comm, src, tag int) (*message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for i, m := range q.items {
			if m.matches(c.ctx, src, tag) {
				q.items = append(q.items[:i], q.items[i+1:]...)
				return m, nil
			}
		}
		if q.aborted.Load() {
			return nil, ErrAborted
		}
		if err := c.waitErr(src); err != nil {
			return nil, err
		}
		q.cond.Wait()
	}
}

// takeDeadline is take with a wall-clock deadline, after which it returns
// ErrTimeout (RecvTimeout's engine; the timer allocation is off the
// fault-free hot path).
func (q *msgQueue) takeDeadline(c *Comm, src, tag int, d time.Duration) (*message, error) {
	var expired atomic.Bool
	timer := time.AfterFunc(d, func() {
		// Flip the flag under the queue lock so a waiter between its
		// check and cond.Wait cannot miss the wakeup.
		q.mu.Lock()
		expired.Store(true)
		q.mu.Unlock()
		q.cond.Broadcast()
	})
	defer timer.Stop()
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for i, m := range q.items {
			if m.matches(c.ctx, src, tag) {
				q.items = append(q.items[:i], q.items[i+1:]...)
				return m, nil
			}
		}
		if q.aborted.Load() {
			return nil, ErrAborted
		}
		if err := c.waitErr(src); err != nil {
			return nil, err
		}
		if expired.Load() {
			return nil, timeoutErr("recv")
		}
		q.cond.Wait()
	}
}

// peek blocks until a matching message is queued and returns it without
// removing it (Probe); error semantics as in take.
func (q *msgQueue) peek(c *Comm, src, tag int) (*message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for _, m := range q.items {
			if m.matches(c.ctx, src, tag) {
				return m, nil
			}
		}
		if q.aborted.Load() {
			return nil, ErrAborted
		}
		if err := c.waitErr(src); err != nil {
			return nil, err
		}
		q.cond.Wait()
	}
}

// tryTake is take without blocking; ok reports whether a match was found.
func (q *msgQueue) tryTake(ctx, src, tag int) (*message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, m := range q.items {
		if m.matches(ctx, src, tag) {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return m, true
		}
	}
	return nil, false
}

// pending returns the number of queued messages (diagnostics and tests).
func (q *msgQueue) pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
