package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mpimon/internal/netsim"
	"mpimon/internal/pml"
	"mpimon/internal/topology"
)

// testMachine: 2 nodes x 2 sockets x 2 cores, round numbers, no contention
// by default so expected virtual times are exact.
func testMachine() *netsim.Machine {
	return &netsim.Machine{
		Topo: topology.MustNew(2, 2, 2),
		Links: []netsim.LinkParams{
			{Latency: time.Microsecond, Bandwidth: 1e9},
			{Latency: 300 * time.Nanosecond, Bandwidth: 2e9},
			{Latency: 100 * time.Nanosecond, Bandwidth: 4e9},
			{Latency: 50 * time.Nanosecond, Bandwidth: 8e9},
		},
		SendOverhead:   100 * time.Nanosecond,
		RecvOverhead:   100 * time.Nanosecond,
		EagerLimit:     4096,
		Contention:     false,
		FlopsPerSecond: 1e9,
	}
}

func newTestWorld(t *testing.T, np int, opts ...Option) *World {
	t.Helper()
	w, err := NewWorld(testMachine(), np, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func run(t *testing.T, w *World, fn func(c *Comm) error) {
	t.Helper()
	if err := w.RunWithTimeout(30*time.Second, fn); err != nil {
		t.Fatal(err)
	}
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(testMachine(), 0); err == nil {
		t.Fatal("world of size 0 should fail")
	}
	if _, err := NewWorld(testMachine(), 9); err == nil {
		t.Fatal("more ranks than cores should fail")
	}
	if _, err := NewWorld(testMachine(), 2, WithPlacement([]int{0})); err == nil {
		t.Fatal("short placement should fail")
	}
	if _, err := NewWorld(testMachine(), 2, WithPlacement([]int{1, 1})); err == nil {
		t.Fatal("duplicate placement should fail")
	}
	if _, err := NewWorld(testMachine(), 2, WithPlacement([]int{0, 99})); err == nil {
		t.Fatal("out-of-range placement should fail")
	}
}

func TestRunTwice(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error { return nil })
	if err := w.Run(func(c *Comm) error { return nil }); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestRunRecoversPanics(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !contains(err.Error(), "rank 1 panicked") {
		t.Fatalf("panic not reported, got %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestPingPong(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []byte("hello")); err != nil {
				return err
			}
			buf := make([]byte, 16)
			st, err := c.Recv(1, 8, buf)
			if err != nil {
				return err
			}
			if string(buf[:st.Size]) != "world" || st.Source != 1 || st.Tag != 8 {
				return fmt.Errorf("bad reply: %q %+v", buf[:st.Size], st)
			}
		} else {
			buf := make([]byte, 16)
			st, err := c.Recv(0, 7, buf)
			if err != nil {
				return err
			}
			if string(buf[:st.Size]) != "hello" {
				return fmt.Errorf("got %q, want hello", buf[:st.Size])
			}
			return c.Send(0, 8, []byte("world"))
		}
		return nil
	})
}

func TestSendBufferIsCopied(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			data := []byte{1, 2, 3}
			if err := c.Send(1, 0, data); err != nil {
				return err
			}
			data[0] = 99 // must not affect the in-flight message
			return nil
		}
		buf := make([]byte, 3)
		if _, err := c.Recv(0, 0, buf); err != nil {
			return err
		}
		if buf[0] != 1 {
			return fmt.Errorf("message aliased the sender's buffer: %v", buf)
		}
		return nil
	})
}

func TestWildcards(t *testing.T) {
	w := newTestWorld(t, 3)
	run(t, w, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				buf := make([]byte, 8)
				st, err := c.Recv(AnySource, AnyTag, buf)
				if err != nil {
					return err
				}
				seen[st.Source] = true
				if st.Tag != 10+st.Source {
					return fmt.Errorf("tag %d from %d", st.Tag, st.Source)
				}
			}
			if !seen[1] || !seen[2] {
				return fmt.Errorf("did not hear from both senders: %v", seen)
			}
		default:
			return c.Send(0, 10+c.Rank(), []byte{byte(c.Rank())})
		}
		return nil
	})
}

func TestNonOvertakingSameSender(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		const k = 20
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				if err := c.Send(1, 5, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < k; i++ {
			buf := make([]byte, 1)
			if _, err := c.Recv(0, 5, buf); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("message %d overtook: got %d", i, buf[0])
			}
		}
		return nil
	})
}

func TestTruncationError(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.RunWithTimeout(30*time.Second, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, make([]byte, 100))
		}
		_, err := c.Recv(0, 0, make([]byte, 10))
		if err == nil {
			return errors.New("truncation not reported")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendValidation(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			return errors.New("send to out-of-range rank should fail")
		}
		if err := c.Send(0, -2, nil); err == nil {
			return errors.New("negative tag should fail")
		}
		if err := c.SendN(0, 0, -1); err == nil {
			return errors.New("negative size should fail")
		}
		if _, err := c.Recv(9, 0, nil); err == nil {
			return errors.New("recv from out-of-range rank should fail")
		}
		return nil
	})
}

func TestSelfSend(t *testing.T) {
	w := newTestWorld(t, 1)
	run(t, w, func(c *Comm) error {
		if err := c.Send(0, 3, []byte("me")); err != nil {
			return err
		}
		buf := make([]byte, 2)
		st, err := c.Recv(0, 3, buf)
		if err != nil {
			return err
		}
		if string(buf) != "me" || st.Size != 2 {
			return fmt.Errorf("self message corrupted: %q", buf)
		}
		return nil
	})
}

func TestVirtualTimeDeterministic(t *testing.T) {
	// Inter-node eager message: receiver clock must be exactly
	// o_s + size/bw + latency + o_r.
	times := make([]time.Duration, 2)
	for trial := 0; trial < 2; trial++ {
		w := newTestWorld(t, 2, WithPlacement([]int{0, 4})) // different nodes
		run(t, w, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, make([]byte, 1000))
			}
			_, err := c.Recv(0, 0, make([]byte, 1000))
			return err
		})
		times[trial] = w.Proc(1).Clock()
	}
	want := 100*time.Nanosecond + 1000*time.Nanosecond + time.Microsecond + 100*time.Nanosecond
	if times[0] != want {
		t.Fatalf("receiver clock = %v, want %v", times[0], want)
	}
	if times[0] != times[1] {
		t.Fatalf("virtual time not deterministic: %v vs %v", times[0], times[1])
	}
}

func TestPlacementAffectsTime(t *testing.T) {
	measure := func(placement []int) time.Duration {
		w, err := NewWorld(testMachine(), 2, WithPlacement(placement))
		if err != nil {
			t.Fatal(err)
		}
		run(t, w, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, make([]byte, 100_000))
			}
			_, err := c.Recv(0, 0, make([]byte, 100_000))
			return err
		})
		return w.Proc(1).Clock()
	}
	near := measure([]int{0, 1}) // same socket
	far := measure([]int{0, 4})  // across nodes
	if near >= far {
		t.Fatalf("same-socket transfer (%v) should be faster than inter-node (%v)", near, far)
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	w := newTestWorld(t, 1)
	run(t, w, func(c *Comm) error {
		c.Proc().Compute(3 * time.Millisecond)
		c.Proc().ComputeFlops(1e6) // 1e6 flops at 1e9 flops/s = 1 ms
		return nil
	})
	if got := w.Proc(0).Clock(); got != 4*time.Millisecond {
		t.Fatalf("clock = %v, want 4ms", got)
	}
}

func TestIsendIrecvOverlap(t *testing.T) {
	w := newTestWorld(t, 2, WithPlacement([]int{0, 4}))
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			req, err := c.Isend(1, 0, make([]byte, 1_000_000)) // rendezvous size
			if err != nil {
				return err
			}
			before := c.Proc().Clock()
			c.Proc().Compute(10 * time.Millisecond)
			if _, err := req.Wait(); err != nil {
				return err
			}
			// The 1 ms injection fits inside the 10 ms compute, so
			// Wait must not add more time.
			if got := c.Proc().Clock(); got != before+10*time.Millisecond {
				return fmt.Errorf("no overlap: clock %v, want %v", got, before+10*time.Millisecond)
			}
			return nil
		}
		req, err := c.Irecv(0, 0, make([]byte, 1_000_000))
		if err != nil {
			return err
		}
		_, err2 := req.Wait()
		return err2
	})
}

func TestWaitTwiceIsIdempotent(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			req, err := c.Isend(1, 0, []byte{1})
			if err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		buf := make([]byte, 1)
		req, err := c.Irecv(0, 0, buf)
		if err != nil {
			return err
		}
		st1, err := req.Wait()
		if err != nil {
			return err
		}
		st2, err := req.Wait()
		if err != nil {
			return err
		}
		if st1 != st2 {
			return fmt.Errorf("second Wait returned different status: %+v vs %+v", st1, st2)
		}
		return nil
	})
}

func TestProbeAndIprobe(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 9, make([]byte, 64))
		}
		st, err := c.Probe(0, 9)
		if err != nil {
			return err
		}
		if st.Size != 64 {
			return fmt.Errorf("probed size %d, want 64", st.Size)
		}
		// Probe must not consume.
		st2, ok, err := c.Iprobe(0, 9)
		if err != nil || !ok {
			return fmt.Errorf("Iprobe after Probe: ok=%v err=%v", ok, err)
		}
		if st2.Size != 64 {
			return fmt.Errorf("Iprobe size %d, want 64", st2.Size)
		}
		if _, err := c.Recv(0, 9, make([]byte, 64)); err != nil {
			return err
		}
		_, ok, err = c.Iprobe(0, AnyTag)
		if err != nil {
			return err
		}
		if ok {
			return errors.New("Iprobe matched after the message was consumed")
		}
		return nil
	})
}

func TestSendrecvExchange(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		other := 1 - c.Rank()
		out := []byte{byte(c.Rank() + 10)}
		in := make([]byte, 1)
		if _, err := c.Sendrecv(other, 3, out, other, 3, in); err != nil {
			return err
		}
		if in[0] != byte(other+10) {
			return fmt.Errorf("rank %d received %d", c.Rank(), in[0])
		}
		return nil
	})
}

func TestMPITimeAccounting(t *testing.T) {
	w := newTestWorld(t, 2, WithPlacement([]int{0, 4}))
	run(t, w, func(c *Comm) error {
		p := c.Proc()
		if c.Rank() == 0 {
			p.Compute(5 * time.Millisecond) // not MPI time
			return c.Send(1, 0, make([]byte, 10))
		}
		_, err := c.Recv(0, 0, make([]byte, 10))
		return err
	})
	// Rank 1 spent its whole life inside Recv (it posted at t=0 and the
	// sender only sent at 5 ms): MPITime == Clock.
	p1 := w.Proc(1)
	if p1.MPITime() != p1.Clock() {
		t.Fatalf("rank 1 MPI time %v != clock %v", p1.MPITime(), p1.Clock())
	}
	// Rank 0's MPI time excludes its compute phase.
	p0 := w.Proc(0)
	if p0.MPITime() >= p0.Clock() {
		t.Fatalf("rank 0 MPI time %v should exclude the 5ms compute (clock %v)", p0.MPITime(), p0.Clock())
	}
}

func TestMonitoringRecordsSends(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 0, make([]byte, 123)); err != nil {
				return err
			}
			return c.Send(1, 0, make([]byte, 77))
		}
		if _, err := c.Recv(0, 0, nil); err != nil {
			return err
		}
		_, err := c.Recv(0, 0, nil)
		return err
	})
	counts := make([]uint64, 2)
	bytes := make([]uint64, 2)
	w.Proc(0).Monitor().Counts(pml.P2P, counts)
	w.Proc(0).Monitor().Bytes(pml.P2P, bytes)
	if counts[1] != 2 || bytes[1] != 200 {
		t.Fatalf("monitored %d msgs / %d bytes to rank 1, want 2 / 200", counts[1], bytes[1])
	}
	// The receiver recorded nothing (sender-side monitoring).
	w.Proc(1).Monitor().Counts(pml.P2P, counts)
	if counts[0] != 0 {
		t.Fatalf("receiver recorded %d sends", counts[0])
	}
}

func TestMonitoringDisabledLevel(t *testing.T) {
	w := newTestWorld(t, 2, WithMonitoringLevel(pml.Disabled))
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, make([]byte, 50))
		}
		_, err := c.Recv(0, 0, nil)
		return err
	})
	if got := w.Proc(0).Monitor().TotalBytes(pml.P2P); got != 0 {
		t.Fatalf("disabled monitoring recorded %d bytes", got)
	}
}

func TestSendNCarriesSizeOnly(t *testing.T) {
	w := newTestWorld(t, 2, WithPlacement([]int{0, 4}))
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.SendN(1, 0, 1<<20)
		}
		st, err := c.Recv(0, 0, nil)
		if err != nil {
			return err
		}
		if st.Size != 1<<20 {
			return fmt.Errorf("logical size %d, want %d", st.Size, 1<<20)
		}
		return nil
	})
	if got := w.Proc(0).Monitor().TotalBytes(pml.P2P); got != 1<<20 {
		t.Fatalf("monitored %d bytes, want %d", got, 1<<20)
	}
	if got := w.Network().XmitData(0); got != 1<<20 {
		t.Fatalf("NIC saw %d bytes, want %d", got, 1<<20)
	}
}
