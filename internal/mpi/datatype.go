package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Datatype identifies the element type of a reduction buffer.
type Datatype int

// Supported datatypes.
const (
	Byte Datatype = iota
	Int32
	Int64
	Uint64
	Float64
)

// Size returns the element size in bytes.
func (dt Datatype) Size() int {
	switch dt {
	case Byte:
		return 1
	case Int32:
		return 4
	case Int64, Uint64, Float64:
		return 8
	default:
		panic(fmt.Sprintf("mpi: unknown datatype %d", int(dt)))
	}
}

// String returns the datatype name.
func (dt Datatype) String() string {
	switch dt {
	case Byte:
		return "byte"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Uint64:
		return "uint64"
	case Float64:
		return "float64"
	default:
		return fmt.Sprintf("Datatype(%d)", int(dt))
	}
}

// Op is a reduction operator.
type Op int

// Supported reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

// String returns the operator name.
func (op Op) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// reduceInto applies acc = op(acc, in) elementwise. Both buffers must hold
// a whole number of dt elements and have equal length.
func reduceInto(acc, in []byte, dt Datatype, op Op) error {
	if len(acc) != len(in) {
		return fmt.Errorf("mpi: reduce buffers differ in length (%d vs %d)", len(acc), len(in))
	}
	es := dt.Size()
	if len(acc)%es != 0 {
		return fmt.Errorf("mpi: reduce buffer of %d bytes is not a multiple of %s size %d", len(acc), dt, es)
	}
	n := len(acc) / es
	switch dt {
	case Byte:
		for i := 0; i < n; i++ {
			acc[i] = byte(combineInt(int64(acc[i]), int64(in[i]), op))
		}
	case Int32:
		for i := 0; i < n; i++ {
			a := int32(binary.LittleEndian.Uint32(acc[4*i:]))
			b := int32(binary.LittleEndian.Uint32(in[4*i:]))
			binary.LittleEndian.PutUint32(acc[4*i:], uint32(int32(combineInt(int64(a), int64(b), op))))
		}
	case Int64:
		for i := 0; i < n; i++ {
			a := int64(binary.LittleEndian.Uint64(acc[8*i:]))
			b := int64(binary.LittleEndian.Uint64(in[8*i:]))
			binary.LittleEndian.PutUint64(acc[8*i:], uint64(combineInt(a, b, op)))
		}
	case Uint64:
		for i := 0; i < n; i++ {
			a := binary.LittleEndian.Uint64(acc[8*i:])
			b := binary.LittleEndian.Uint64(in[8*i:])
			binary.LittleEndian.PutUint64(acc[8*i:], combineUint(a, b, op))
		}
	case Float64:
		for i := 0; i < n; i++ {
			a := math.Float64frombits(binary.LittleEndian.Uint64(acc[8*i:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(in[8*i:]))
			binary.LittleEndian.PutUint64(acc[8*i:], math.Float64bits(combineFloat(a, b, op)))
		}
	default:
		return fmt.Errorf("mpi: reduce on unknown datatype %d", int(dt))
	}
	return nil
}

func combineInt(a, b int64, op Op) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	}
	panic(fmt.Sprintf("mpi: unknown op %d", int(op)))
}

func combineUint(a, b uint64, op Op) uint64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	}
	panic(fmt.Sprintf("mpi: unknown op %d", int(op)))
}

func combineFloat(a, b float64, op Op) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	}
	panic(fmt.Sprintf("mpi: unknown op %d", int(op)))
}

// EncodeFloat64s packs a float64 slice into a fresh byte buffer.
func EncodeFloat64s(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// DecodeFloat64s unpacks a byte buffer written by EncodeFloat64s.
func DecodeFloat64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// EncodeUint64s packs a uint64 slice into a fresh byte buffer.
func EncodeUint64s(v []uint64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], x)
	}
	return out
}

// DecodeUint64s unpacks a byte buffer written by EncodeUint64s.
func DecodeUint64s(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

// EncodeInts packs an int slice as int64 little-endian.
func EncodeInts(v []int) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(int64(x)))
	}
	return out
}

// DecodeInts unpacks a byte buffer written by EncodeInts.
func DecodeInts(b []byte) []int {
	out := make([]int, len(b)/8)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return out
}
