package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// Failure-injection tests: the runtime must degrade into errors, never
// into hangs, when ranks misbehave.

func TestAbortWakesBlockedCollective(t *testing.T) {
	w := newTestWorld(t, 4)
	err := w.RunWithTimeout(30*time.Second, func(c *Comm) error {
		if c.Rank() == 3 {
			return errors.New("injected failure before the barrier")
		}
		// The other ranks block in a barrier that can never complete;
		// the abort must wake them.
		err := c.Barrier()
		if err == nil {
			return errors.New("barrier completed without rank 3")
		}
		if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("expected ErrAborted, got %v", err)
		}
		return nil
	})
	if err == nil || !contains(err.Error(), "injected failure") {
		t.Fatalf("the injected error should surface, got: %v", err)
	}
	if contains(err.Error(), "ErrAborted fallout") {
		t.Fatalf("fallout should not be reported alongside the cause: %v", err)
	}
}

func TestAbortWakesBlockedRecv(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.RunWithTimeout(30*time.Second, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("injected panic")
		}
		_, err := c.Recv(0, 0, nil)
		if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("recv returned %v, want ErrAborted", err)
		}
		return err
	})
	if err == nil || !contains(err.Error(), "injected panic") {
		t.Fatalf("panic should surface as the root cause, got: %v", err)
	}
}

func TestAbortWakesBlockedProbe(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.RunWithTimeout(30*time.Second, func(c *Comm) error {
		if c.Rank() == 0 {
			return errors.New("rank 0 gives up")
		}
		_, err := c.Probe(0, 7)
		if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("probe returned %v, want ErrAborted", err)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected the injected error")
	}
}

func TestWatchdogCatchesTrueDeadlock(t *testing.T) {
	w := newTestWorld(t, 2)
	// Both ranks wait for a message that is never sent: only the
	// watchdog can report it (goroutines are leaked, as documented).
	err := w.RunWithTimeout(200*time.Millisecond, func(c *Comm) error {
		_, err := c.Recv(1-c.Rank(), 0, nil)
		return err
	})
	if err == nil || !contains(err.Error(), "deadlock") {
		t.Fatalf("watchdog did not trigger: %v", err)
	}
}

func TestMismatchedCollectiveAborts(t *testing.T) {
	// One rank calls Bcast with an invalid root and returns the error;
	// the others must not hang in their matching Bcast.
	w := newTestWorld(t, 3)
	err := w.RunWithTimeout(30*time.Second, func(c *Comm) error {
		if c.Rank() == 1 {
			return c.Bcast(nil, 99) // invalid root: immediate error
		}
		err := c.Bcast(make([]byte, 8), 0)
		// Rank 0 (the root) may even succeed (its sends complete);
		// rank 2 blocks and must be woken by the abort.
		if err != nil && !errors.Is(err, ErrAborted) {
			return fmt.Errorf("unexpected bcast error: %v", err)
		}
		return nil
	})
	if err == nil || !contains(err.Error(), "root") {
		t.Fatalf("invalid-root error should surface: %v", err)
	}
}

func TestErrorAfterCompletionDoesNotCorruptClocks(t *testing.T) {
	// A rank failing after all communication completed must not disturb
	// the other ranks' recorded state.
	w := newTestWorld(t, 2)
	err := w.RunWithTimeout(30*time.Second, func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			return errors.New("late failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected the late failure")
	}
	if w.Proc(0).Clock() <= 0 {
		t.Fatal("rank 0 clock lost")
	}
}
