package mpi

import (
	"errors"
	"fmt"
	"testing"
)

func TestSplitEvenOdd(t *testing.T) {
	const np = 6
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			return fmt.Errorf("subcomm size %d, want 3", sub.Size())
		}
		if want := c.Rank() / 2; sub.Rank() != want {
			return fmt.Errorf("world rank %d got subrank %d, want %d", c.Rank(), sub.Rank(), want)
		}
		// The group must contain the matching world ranks in order.
		for i, wr := range sub.Group() {
			if wr != 2*i+c.Rank()%2 {
				return fmt.Errorf("group %v for parity %d", sub.Group(), c.Rank()%2)
			}
		}
		// Communication inside the subcomm works and is isolated.
		buf := []byte{byte(sub.Rank())}
		if err := sub.Bcast(buf, 0); err != nil {
			return err
		}
		if buf[0] != 0 {
			return fmt.Errorf("subcomm bcast corrupted: %v", buf)
		}
		return nil
	})
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	const np = 4
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		// Reverse ranks via the key.
		sub, err := c.Split(0, np-c.Rank())
		if err != nil {
			return err
		}
		if want := np - 1 - c.Rank(); sub.Rank() != want {
			return fmt.Errorf("world rank %d became %d, want %d", c.Rank(), sub.Rank(), want)
		}
		return nil
	})
}

func TestSplitUndefinedColor(t *testing.T) {
	const np = 4
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		color := 0
		if c.Rank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 3 {
			if sub != nil {
				return errors.New("undefined color should yield a nil communicator")
			}
			return nil
		}
		if sub.Size() != 3 {
			return fmt.Errorf("subcomm size %d, want 3", sub.Size())
		}
		return sub.Barrier()
	})
}

func TestSequentialSplitsGetDistinctContexts(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		a, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		b, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		if a.Context() == b.Context() {
			return errors.New("two splits share a context")
		}
		// Messages on a must not match receives on b.
		if c.Rank() == 0 {
			if err := a.Send(1, 1, []byte{0xA}); err != nil {
				return err
			}
			return b.Send(1, 1, []byte{0xB})
		}
		buf := make([]byte, 1)
		if _, err := b.Recv(0, 1, buf); err != nil {
			return err
		}
		if buf[0] != 0xB {
			return fmt.Errorf("comm b received %x, want 0xB", buf[0])
		}
		if _, err := a.Recv(0, 1, buf); err != nil {
			return err
		}
		if buf[0] != 0xA {
			return fmt.Errorf("comm a received %x, want 0xA", buf[0])
		}
		return nil
	})
}

func TestDup(t *testing.T) {
	w := newTestWorld(t, 3)
	run(t, w, func(c *Comm) error {
		d, err := c.Dup()
		if err != nil {
			return err
		}
		if d.Size() != c.Size() || d.Rank() != c.Rank() {
			return fmt.Errorf("dup changed shape: %d/%d", d.Rank(), d.Size())
		}
		if d.Context() == c.Context() {
			return errors.New("dup shares the parent context")
		}
		return d.Barrier()
	})
}

func TestNestedSplit(t *testing.T) {
	const np = 8
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		half, err := c.Split(c.Rank()/4, c.Rank())
		if err != nil {
			return err
		}
		quarter, err := half.Split(half.Rank()/2, half.Rank())
		if err != nil {
			return err
		}
		if quarter.Size() != 2 {
			return fmt.Errorf("nested split size %d, want 2", quarter.Size())
		}
		// Allreduce over the pair: sum of the two world ranks.
		send := EncodeInts([]int{c.Rank()})
		recv := make([]byte, len(send))
		if err := quarter.Allreduce(send, recv, Int64, OpSum); err != nil {
			return err
		}
		base := (c.Rank() / 2) * 2
		if got := DecodeInts(recv)[0]; got != base+base+1 {
			return fmt.Errorf("pair sum %d, want %d", got, 2*base+1)
		}
		return nil
	})
}

func TestTranslate(t *testing.T) {
	const np = 4
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		even, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		tr := c.Translate(even)
		for wr := 0; wr < np; wr++ {
			if wr%2 == c.Rank()%2 {
				if tr[wr] != wr/2 {
					return fmt.Errorf("translate[%d] = %d, want %d", wr, tr[wr], wr/2)
				}
			} else if tr[wr] != -1 {
				return fmt.Errorf("translate[%d] = %d, want -1 (not a member)", wr, tr[wr])
			}
		}
		return nil
	})
}

func TestCrossCommunicatorTrafficStillMonitoredPerWorldRank(t *testing.T) {
	// The paper's semantics: a session on a communicator sees traffic
	// between its members even on other communicators. That works
	// because pml counters are per world rank; verify that here.
	const np = 4
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		// World ranks 0 and 2 are subranks 0 and 1 of the even comm.
		if c.Rank() == 0 {
			if err := sub.Send(1, 0, make([]byte, 64)); err != nil { // to world rank 2
				return err
			}
		}
		if c.Rank() == 2 {
			if _, err := sub.Recv(0, 0, nil); err != nil {
				return err
			}
		}
		return nil
	})
	bytes := make([]uint64, np)
	w.Proc(0).Monitor().Bytes(0 /* pml.P2P */, bytes)
	if bytes[2] != 64 {
		t.Fatalf("world-rank accounting lost subcomm traffic: %v", bytes)
	}
}
