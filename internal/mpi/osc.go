package mpi

import (
	"encoding/binary"
	"fmt"

	"mpimon/internal/pml"
)

// One-sided message tags (on the window's private communicator).
const (
	tagData   = 8 << 20  // put or accumulate payload
	tagGetReq = 9 << 20  // get request
	tagGetRep = 10 << 20 // get reply
)

// One-sided payload kinds, first header byte of a tagData message.
const (
	oscPut = iota
	oscAcc
)

// dataHeader is the fixed prefix of a tagData payload: kind(1) offset(8)
// datatype(4) op(4).
const dataHeader = 17

// Win is a one-sided communication window over a communicator, with
// active-target synchronization: epochs are delimited by Fence calls, and
// Put/Get/Accumulate issued inside an epoch complete at the closing Fence.
type Win struct {
	c   *Comm
	buf []byte

	putsTo  []int // data messages sent to each target this epoch
	getsTo  []int // get requests sent to each target this epoch
	pending []pendingGet
	freed   bool
}

type pendingGet struct {
	dst int
	buf []byte
}

// CreateWin exposes buf for one-sided access by the members of c.
// Collective over c; internally the window gets a private duplicate of the
// communicator so its traffic cannot match user messages.
func (c *Comm) CreateWin(buf []byte) (*Win, error) {
	dup, err := c.Dup()
	if err != nil {
		return nil, err
	}
	n := dup.Size()
	return &Win{c: dup, buf: buf, putsTo: make([]int, n), getsTo: make([]int, n)}, nil
}

// Comm returns the window's private communicator.
func (w *Win) Comm() *Comm { return w.c }

func (w *Win) checkOpen() error {
	if w.freed {
		return fmt.Errorf("mpi: operation on a freed window")
	}
	return nil
}

// oscSend transmits a one-sided message, monitored with class Osc. It
// takes ownership of m (built with getMsg/cloneMsg).
func (w *Win) oscSend(dst, tag int, m *message) error {
	t0 := w.c.p.enterMPI()
	defer w.c.p.leaveMPI(t0)
	return w.c.send(dst, tag, m, pml.Osc)
}

// Put writes data into the target's window buffer at the given byte offset.
// The transfer is complete only after the next Fence.
func (w *Win) Put(dst, offset int, data []byte) error {
	return w.sendData(dst, offset, data, oscPut, Byte, OpSum)
}

// Accumulate combines data into the target's window buffer at the byte
// offset using op over dt elements. Completes at the next Fence.
func (w *Win) Accumulate(dst, offset int, data []byte, dt Datatype, op Op) error {
	return w.sendData(dst, offset, data, oscAcc, dt, op)
}

func (w *Win) sendData(dst, offset int, data []byte, kind byte, dt Datatype, op Op) error {
	if err := w.checkOpen(); err != nil {
		return err
	}
	if err := w.c.checkRank(dst, "target"); err != nil {
		return err
	}
	if offset < 0 {
		return fmt.Errorf("mpi: negative window offset %d", offset)
	}
	m := getMsg(dataHeader+len(data), true)
	payload := m.data
	payload[0] = kind
	binary.LittleEndian.PutUint64(payload[1:], uint64(offset))
	binary.LittleEndian.PutUint32(payload[9:], uint32(dt))
	binary.LittleEndian.PutUint32(payload[13:], uint32(op))
	copy(payload[dataHeader:], data)
	if err := w.oscSend(dst, tagData, m); err != nil {
		return err
	}
	w.putsTo[dst]++
	return nil
}

// Get schedules a read of len(buf) bytes at the target's window offset into
// buf; buf is valid only after the next Fence.
func (w *Win) Get(dst, offset int, buf []byte) error {
	if err := w.checkOpen(); err != nil {
		return err
	}
	if err := w.c.checkRank(dst, "target"); err != nil {
		return err
	}
	m := getMsg(16, true)
	binary.LittleEndian.PutUint64(m.data, uint64(offset))
	binary.LittleEndian.PutUint64(m.data[8:], uint64(len(buf)))
	if err := w.oscSend(dst, tagGetReq, m); err != nil {
		return err
	}
	w.getsTo[dst]++
	w.pending = append(w.pending, pendingGet{dst: dst, buf: buf})
	return nil
}

// Fence closes the current epoch: all Put/Accumulate calls issued by any
// member are applied to the target buffers, all Get buffers are filled, and
// no member leaves before every other has entered. Collective over the
// window's communicator.
func (w *Win) Fence() error {
	if err := w.checkOpen(); err != nil {
		return err
	}
	c := w.c
	p := c.p
	t0 := p.enterMPI()
	defer p.leaveMPI(t0)
	defer c.span("win.fence")()
	n := c.Size()

	// 1. Exchange per-peer (put, get) counts; synchronization traffic is
	// library-internal (class Coll), only Put/Get data is class Osc.
	send := make([]byte, 16*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(send[16*i:], uint64(w.putsTo[i]))
		binary.LittleEndian.PutUint64(send[16*i+8:], uint64(w.getsTo[i]))
	}
	recv := make([]byte, 16*n)
	p.beginInternal()
	err := c.Alltoall(send, recv)
	p.endInternal()
	if err != nil {
		return err
	}

	// 2. Apply incoming puts/accumulates and serve incoming get requests.
	// Everything received here was sent by the peer before its Fence, so
	// the counts from step 1 are complete.
	for src := 0; src < n; src++ {
		puts := int(binary.LittleEndian.Uint64(recv[16*src:]))
		gets := int(binary.LittleEndian.Uint64(recv[16*src+8:]))
		for k := 0; k < puts; k++ {
			if err := w.applyOne(src); err != nil {
				return err
			}
		}
		for k := 0; k < gets; k++ {
			if err := w.serveGet(src); err != nil {
				return err
			}
		}
	}

	// 3. Collect replies to our own gets, in issue order (FIFO per peer).
	for _, g := range w.pending {
		if _, err := c.recvOn(c.ctx, g.dst, tagGetRep, g.buf); err != nil {
			return err
		}
	}

	// 4. Close the epoch.
	p.beginInternal()
	err = c.barrier()
	p.endInternal()
	if err != nil {
		return err
	}
	for i := range w.putsTo {
		w.putsTo[i], w.getsTo[i] = 0, 0
	}
	w.pending = w.pending[:0]
	return nil
}

// applyOne receives and applies one put or accumulate from src.
func (w *Win) applyOne(src int) error {
	c := w.c
	st, err := c.Probe(src, tagData)
	if err != nil {
		return err
	}
	buf := make([]byte, st.Size)
	if _, err := c.recvOn(c.ctx, src, tagData, buf); err != nil {
		return err
	}
	if len(buf) < dataHeader {
		return fmt.Errorf("mpi: malformed one-sided payload of %d bytes from %d", len(buf), src)
	}
	kind := buf[0]
	off := int(binary.LittleEndian.Uint64(buf[1:]))
	data := buf[dataHeader:]
	if off < 0 || off+len(data) > len(w.buf) {
		return fmt.Errorf("mpi: one-sided write of %d bytes at offset %d outside window of %d bytes", len(data), off, len(w.buf))
	}
	switch kind {
	case oscPut:
		copy(w.buf[off:], data)
		return nil
	case oscAcc:
		dt := Datatype(binary.LittleEndian.Uint32(buf[9:]))
		op := Op(binary.LittleEndian.Uint32(buf[13:]))
		return reduceInto(w.buf[off:off+len(data)], data, dt, op)
	default:
		return fmt.Errorf("mpi: unknown one-sided payload kind %d from %d", kind, src)
	}
}

func (w *Win) serveGet(src int) error {
	c := w.c
	req := make([]byte, 16)
	if _, err := c.recvOn(c.ctx, src, tagGetReq, req); err != nil {
		return err
	}
	off := int(binary.LittleEndian.Uint64(req))
	length := int(binary.LittleEndian.Uint64(req[8:]))
	if off < 0 || length < 0 || off+length > len(w.buf) {
		return fmt.Errorf("mpi: get of %d bytes at offset %d outside window of %d bytes", length, off, len(w.buf))
	}
	return w.oscSend(src, tagGetRep, cloneMsg(w.buf[off:off+length]))
}

// Free releases the window after a final synchronization. Collective.
func (w *Win) Free() error {
	if err := w.checkOpen(); err != nil {
		return err
	}
	p := w.c.p
	t0 := p.enterMPI()
	defer p.leaveMPI(t0)
	p.beginInternal()
	err := w.c.barrier()
	p.endInternal()
	w.freed = true
	return err
}
