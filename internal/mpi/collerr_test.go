package mpi

import (
	"errors"
	"testing"
	"time"

	"mpimon/internal/faults"
)

// The Scan/Exscan bugfix: every error path must route through the
// per-comm error handler and keep typed *MPIError classification.

func TestScanDeathSurfacesProcFailed(t *testing.T) {
	// Rank 0 on node 1 dies mid-run; rank 1's Scan blocks receiving the
	// prefix from rank 0 and must surface ErrProcFailed through the
	// handler rather than hang or return a raw error.
	plan := &faults.Plan{Deaths: []faults.NodeDeath{{Node: 1, At: time.Millisecond}}}
	w := newTestWorld(t, 2, WithPlacement([]int{4, 0}), WithFaultPlan(plan))
	run(t, w, func(c *Comm) error {
		buf := EncodeInts([]int{c.Rank() + 1})
		out := make([]byte, len(buf))
		if c.Rank() == 0 {
			// Advance past the death, then let Scan materialize it.
			c.Proc().Compute(2 * time.Millisecond)
			err := c.Scan(buf, out, Int64, OpSum)
			if !errors.Is(err, ErrProcFailed) {
				t.Errorf("dead rank's scan: %v, want ErrProcFailed", err)
			}
			return err // a dead rank's ErrProcFailed exit must not fail the run
		}
		handled := 0
		c.SetErrHandler(func(_ *Comm, err error) error {
			handled++
			return err
		})
		err := c.Scan(buf, out, Int64, OpSum)
		if !errors.Is(err, ErrProcFailed) {
			t.Errorf("scan with dead predecessor: %v, want ErrProcFailed", err)
		}
		var me *MPIError
		if !errors.As(err, &me) {
			t.Errorf("scan error is not an *MPIError: %v", err)
		}
		if handled == 0 {
			t.Error("error handler not invoked for scan failure")
		}
		return nil
	})
	if !w.RankFailed(0) {
		t.Fatal("rank 0 not recorded as failed")
	}
}

func TestExscanDeathSurfacesProcFailed(t *testing.T) {
	plan := &faults.Plan{Deaths: []faults.NodeDeath{{Node: 1, At: time.Millisecond}}}
	w := newTestWorld(t, 2, WithPlacement([]int{4, 0}), WithFaultPlan(plan))
	run(t, w, func(c *Comm) error {
		buf := EncodeInts([]int{c.Rank() + 1})
		out := make([]byte, len(buf))
		if c.Rank() == 0 {
			c.Proc().Compute(2 * time.Millisecond)
			err := c.Exscan(buf, out, Int64, OpSum)
			if !errors.Is(err, ErrProcFailed) {
				t.Errorf("dead rank's exscan: %v, want ErrProcFailed", err)
			}
			return err
		}
		handled := 0
		c.SetErrHandler(func(_ *Comm, err error) error {
			handled++
			return err
		})
		err := c.Exscan(buf, out, Int64, OpSum)
		if !errors.Is(err, ErrProcFailed) {
			t.Errorf("exscan with dead predecessor: %v, want ErrProcFailed", err)
		}
		if handled == 0 {
			t.Error("error handler not invoked for exscan failure")
		}
		return nil
	})
}

// Validation errors (bad buffer sizes, bad counts) must also reach the
// handler on every variant — the original bug was exactly these paths
// returning raw fmt.Errorf.
func TestCollectiveValidationErrorsHitHandler(t *testing.T) {
	const np = 4
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		handled := 0
		c.SetErrHandler(func(_ *Comm, err error) error {
			handled++
			return err
		})
		short := make([]byte, 8)
		long := make([]byte, 16)
		badCounts := make([]int, np-1) // wrong number of entries
		ok := make([]int, np)
		cases := []struct {
			what string
			call func() error
		}{
			{"scan", func() error { return c.Scan(long, short, Int64, OpSum) }},
			{"exscan", func() error { return c.Exscan(long, short, Int64, OpSum) }},
			{"allreduce.rd", func() error { return c.AllreduceRD(long, short, Int64, OpSum) }},
			{"allreduce.ring", func() error { return c.AllreduceRing(long, short, Int64, OpSum) }},
			{"allreduce.rab", func() error { return c.AllreduceRab(long, short, Int64, OpSum) }},
			{"reduce_scatter_block", func() error { return c.ReduceScatterBlock(short, long, Int64, OpSum) }},
			{"allgather.rd", func() error { return c.AllgatherRD(short, short) }},
			// counts are root-only significant, so use a root every rank
			// rejects before communicating.
			{"gatherv", func() error { return c.Gatherv(short, nil, badCounts, nil, np) }},
			{"scatterv", func() error { return c.Scatterv(nil, badCounts, nil, short, -1) }},
			{"alltoallv", func() error { return c.Alltoallv(short, badCounts, ok, long, ok, ok) }},
			{"alltoallv.bruck", func() error { return c.AlltoallvBruck(short, badCounts, ok, long, ok, ok) }},
			{"allgatherv", func() error { return c.Allgatherv(short, long, badCounts, ok) }},
		}
		for i, tc := range cases {
			if err := tc.call(); err == nil {
				t.Errorf("%s accepted invalid arguments", tc.what)
			}
			if handled != i+1 {
				t.Errorf("%s: handler invoked %d times after %d failing calls", tc.what, handled, i+1)
			}
		}
		return nil
	})
}

// BcastSAG's validation error (buffer not splittable) must hit the
// handler too; it needs its own case because the root signature differs.
func TestBcastSAGValidationHitsHandler(t *testing.T) {
	w := newTestWorld(t, 4)
	run(t, w, func(c *Comm) error {
		handled := 0
		c.SetErrHandler(func(_ *Comm, err error) error {
			handled++
			return err
		})
		if err := c.BcastSAG(make([]byte, 8), -1); err == nil {
			t.Error("bcast.sag accepted an invalid root")
		}
		if handled != 1 {
			t.Errorf("handler invoked %d times, want 1", handled)
		}
		return nil
	})
}
