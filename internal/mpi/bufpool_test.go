package mpi

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mpimon/internal/faults"
)

// These tests pin down the safety contract of the pooled message buffers
// (bufpool.go): a recycled payload must never be observable by the
// application. Run them under -race (the Makefile's race tier does): any
// release that happens before the consuming receive finished its copy-out
// shows up as a data race on the recycled array.

func TestBufClass(t *testing.T) {
	for _, tc := range []struct{ n, cls int }{
		{0, poolStruct},
		{1, 0},
		{64, 0},
		{65, 1},
		{128, 1},
		{1 << 20, numBufClasses - 1},
		{1<<20 + 1, poolNone},
	} {
		if got := bufClass(tc.n); got != tc.cls {
			t.Errorf("bufClass(%d) = %d, want %d", tc.n, got, tc.cls)
		}
	}
	for n := 1; n <= 1<<20; n = n*7/3 + 1 {
		cls := bufClass(n)
		if cls < 0 || cls >= numBufClasses {
			t.Fatalf("bufClass(%d) = %d out of range", n, cls)
		}
		if c := 1 << (bufMinShift + cls); c < n {
			t.Fatalf("bufClass(%d) = %d holds only %d bytes", n, cls, c)
		}
		if cls > 0 {
			if c := 1 << (bufMinShift + cls - 1); c >= n {
				t.Fatalf("bufClass(%d) = %d but class %d already fits", n, cls, cls-1)
			}
		}
	}
}

// pattern fills b with a sequence derived from seed so any cross-talk
// between recycled buffers is detected by content, not just by the race
// detector.
func pattern(b []byte, seed byte) {
	for i := range b {
		b[i] = seed + byte(i*7)
	}
}

// TestPooledSendIntegrity hammers sends of many sizes (hitting several pool
// classes, including the >1MiB unpooled path) between all pairs and checks
// every payload arrives intact.
func TestPooledSendIntegrity(t *testing.T) {
	sizes := []int{0, 1, 63, 64, 65, 1024, 4096, 70000}
	if !testing.Short() {
		sizes = append(sizes, 1<<20, 1<<20+17)
	}
	w := newTestWorld(t, 4)
	run(t, w, func(c *Comm) error {
		n := c.Size()
		for round, size := range sizes {
			for dst := 0; dst < n; dst++ {
				if dst == c.rank {
					continue
				}
				out := make([]byte, size)
				pattern(out, byte(c.rank*31+round))
				if err := c.Send(dst, round, out); err != nil {
					return err
				}
				// Buffered semantics: scribbling over the caller's buffer
				// after Send must not affect what the receiver sees.
				pattern(out, 0xEE)
			}
			for src := 0; src < n; src++ {
				if src == c.rank {
					continue
				}
				buf := make([]byte, size)
				st, err := c.Recv(src, round, buf)
				if err != nil {
					return err
				}
				if st.Size != size {
					return fmt.Errorf("round %d: got %d bytes from %d, want %d", round, st.Size, src, size)
				}
				want := make([]byte, size)
				pattern(want, byte(src*31+round))
				if !bytes.Equal(buf, want) {
					return fmt.Errorf("round %d: corrupted payload from %d", round, src)
				}
			}
		}
		return nil
	})
}

// TestPooledAnySourceAndDiscard covers the consumption paths that release a
// pooled message without a full copy-out: AnySource matching, nil-buffer
// discards, and short-message receives into larger buffers.
func TestPooledAnySourceAndDiscard(t *testing.T) {
	w := newTestWorld(t, 4)
	run(t, w, func(c *Comm) error {
		n := c.Size()
		if c.rank == 0 {
			got := make(map[int]bool)
			for i := 0; i < n-1; i++ {
				buf := make([]byte, 256) // larger than any message
				st, err := c.Recv(AnySource, 1, buf)
				if err != nil {
					return err
				}
				want := make([]byte, 100+st.Source)
				pattern(want, byte(st.Source))
				if !bytes.Equal(buf[:st.Size], want) {
					return fmt.Errorf("corrupted AnySource payload from %d", st.Source)
				}
				got[st.Source] = true
			}
			if len(got) != n-1 {
				return fmt.Errorf("AnySource saw %d senders, want %d", len(got), n-1)
			}
			// Discard path: nil buffer still consumes (and recycles).
			for src := 1; src < n; src++ {
				if _, err := c.Recv(src, 2, nil); err != nil {
					return err
				}
			}
			return nil
		}
		out := make([]byte, 100+c.rank)
		pattern(out, byte(c.rank))
		if err := c.Send(0, 1, out); err != nil {
			return err
		}
		return c.Send(0, 2, out)
	})
}

// TestPooledTruncationError checks the error path: a truncated receive must
// consume and recycle the message, report the error, and leave subsequent
// traffic intact.
func TestPooledTruncationError(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.rank == 0 {
			big := make([]byte, 512)
			pattern(big, 3)
			if err := c.Send(1, 1, big); err != nil {
				return err
			}
			ok := make([]byte, 128)
			pattern(ok, 4)
			return c.Send(1, 2, ok)
		}
		small := make([]byte, 16)
		if _, err := c.Recv(0, 1, small); err == nil {
			return fmt.Errorf("truncated receive did not error")
		}
		buf := make([]byte, 128)
		if _, err := c.Recv(0, 2, buf); err != nil {
			return err
		}
		want := make([]byte, 128)
		pattern(want, 4)
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("payload after truncation error corrupted")
		}
		return nil
	})
}

// TestPooledNonblocking exercises the Isend/Irecv/Test consumption paths,
// including a truncation error surfaced through Test.
func TestPooledNonblocking(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.rank == 0 {
			out := make([]byte, 300)
			pattern(out, 9)
			req, err := c.Isend(1, 5, out)
			if err != nil {
				return err
			}
			pattern(out, 0xAA) // sender may reuse immediately
			if _, err := req.Wait(); err != nil {
				return err
			}
			big := make([]byte, 400)
			pattern(big, 10)
			return c.Send(1, 6, big)
		}
		buf := make([]byte, 300)
		req, err := c.Irecv(0, 5, buf)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		want := make([]byte, 300)
		pattern(want, 9)
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("Irecv payload corrupted")
		}
		// Test-path truncation: poll until the message is consumed.
		small := make([]byte, 8)
		treq, err := c.Irecv(0, 6, small)
		if err != nil {
			return err
		}
		if _, err := c.Probe(0, 6); err != nil { // ensure it is queued
			return err
		}
		_, ok, err := treq.Test()
		if !ok {
			return fmt.Errorf("Test did not consume a queued message")
		}
		if err == nil {
			return fmt.Errorf("truncated Test did not error")
		}
		return nil
	})
}

// TestPooledAlltoallStress pushes collective traffic (whose internal
// payloads ride the pool via sendCopyOn) concurrently on all ranks.
func TestPooledAlltoallStress(t *testing.T) {
	w := newTestWorld(t, 8)
	rounds := 40
	if testing.Short() {
		rounds = 5
	}
	run(t, w, func(c *Comm) error {
		n := c.Size()
		blk := 96 // spans two pool classes with the 17-byte osc header offset
		for r := 0; r < rounds; r++ {
			send := make([]byte, n*blk)
			pattern(send, byte(c.rank+r))
			recv := make([]byte, n*blk)
			if err := c.Alltoall(send, recv); err != nil {
				return err
			}
			for src := 0; src < n; src++ {
				want := make([]byte, n*blk)
				pattern(want, byte(src+r))
				if !bytes.Equal(recv[src*blk:(src+1)*blk], want[c.rank*blk:(c.rank+1)*blk]) {
					return fmt.Errorf("round %d: alltoall block from %d corrupted", r, src)
				}
			}
		}
		return nil
	})
}

func BenchmarkSendRecvAllocs(b *testing.B) {
	benchmarkSendRecv(b, nil)
}

// BenchmarkSendRecvFaultPlan prices the enabled fault path: a plan with one
// never-matching rule forces every transfer through the injector, the
// disabled/enabled split BenchmarkSendRecvAllocs measures the other side of.
func BenchmarkSendRecvFaultPlan(b *testing.B) {
	benchmarkSendRecv(b, &faults.Plan{Links: []faults.LinkRule{
		{SrcNode: 0, DstNode: 1, From: time.Hour, Until: time.Hour + time.Second, ExtraLatency: time.Microsecond},
	}})
}

func benchmarkSendRecv(b *testing.B, plan *faults.Plan) {
	for _, size := range []int{64, 64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			var opts []Option
			if plan != nil {
				opts = append(opts, WithFaultPlan(plan))
			}
			w, err := NewWorld(testMachine(), 2, opts...)
			if err != nil {
				b.Fatal(err)
			}
			out := make([]byte, size)
			in := make([]byte, size)
			b.ReportAllocs()
			b.ResetTimer()
			err = w.Run(func(c *Comm) error {
				if c.Rank() == 0 {
					for i := 0; i < b.N; i++ {
						if err := c.Send(1, 0, out); err != nil {
							return err
						}
						if _, err := c.Recv(1, 1, in); err != nil {
							return err
						}
					}
				} else {
					for i := 0; i < b.N; i++ {
						if _, err := c.Recv(0, 0, in); err != nil {
							return err
						}
						if err := c.Send(0, 1, out); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
