package mpi

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"mpimon/internal/faults"
	"mpimon/internal/netsim"
	"mpimon/internal/pml"
)

// The engine-equivalence pin: on configurations where the goroutine engine
// is itself deterministic (no NIC contention, no wildcard receives), both
// engines must produce bit-identical results — monitored matrices, virtual
// clocks, MPI time, NIC counters, fault outcomes. The event engine is not
// allowed to be "approximately" the runtime; it must BE the runtime.

// worldFP is everything observable about a finished world.
type worldFP struct {
	clocks   []int64
	mpiTimes []int64
	counts   [pml.NumClasses][][]uint64
	bytes    [pml.NumClasses][][]uint64
	xmitData []int64
	xmitPkts []int64
	failed   []int
	dead     []int
}

func fingerprint(w *World) worldFP {
	np := w.Size()
	fp := worldFP{
		clocks:   make([]int64, np),
		mpiTimes: make([]int64, np),
		failed:   w.FailedRanks(),
		dead:     w.DeadNodes(),
	}
	sort.Ints(fp.dead)
	for cl := pml.Class(0); cl < pml.NumClasses; cl++ {
		fp.counts[cl] = make([][]uint64, np)
		fp.bytes[cl] = make([][]uint64, np)
	}
	for r := 0; r < np; r++ {
		p := w.Proc(r)
		fp.clocks[r] = int64(p.Clock())
		fp.mpiTimes[r] = int64(p.MPITime())
		for cl := pml.Class(0); cl < pml.NumClasses; cl++ {
			row := make([]uint64, np)
			p.Monitor().Counts(cl, row)
			fp.counts[cl][r] = row
			row = make([]uint64, np)
			p.Monitor().Bytes(cl, row)
			fp.bytes[cl][r] = row
		}
	}
	nodes := w.Machine().Topo.NumNodes()
	fp.xmitData = make([]int64, nodes)
	fp.xmitPkts = make([]int64, nodes)
	for n := 0; n < nodes; n++ {
		fp.xmitData[n] = w.Network().XmitData(n)
		fp.xmitPkts[n] = w.Network().XmitPackets(n)
	}
	return fp
}

func requireSameFP(t *testing.T, a, b worldFP, what string) {
	t.Helper()
	if !reflect.DeepEqual(a.clocks, b.clocks) {
		t.Fatalf("%s: clocks diverge\n goroutine: %v\n event:     %v", what, a.clocks, b.clocks)
	}
	if !reflect.DeepEqual(a.mpiTimes, b.mpiTimes) {
		t.Fatalf("%s: MPI times diverge\n goroutine: %v\n event:     %v", what, a.mpiTimes, b.mpiTimes)
	}
	for cl := pml.Class(0); cl < pml.NumClasses; cl++ {
		if !reflect.DeepEqual(a.counts[cl], b.counts[cl]) {
			t.Fatalf("%s: class %v count matrices diverge", what, cl)
		}
		if !reflect.DeepEqual(a.bytes[cl], b.bytes[cl]) {
			t.Fatalf("%s: class %v byte matrices diverge", what, cl)
		}
	}
	if !reflect.DeepEqual(a.xmitData, b.xmitData) {
		t.Fatalf("%s: NIC data counters diverge\n goroutine: %v\n event:     %v", what, a.xmitData, b.xmitData)
	}
	if !reflect.DeepEqual(a.xmitPkts, b.xmitPkts) {
		t.Fatalf("%s: NIC packet counters diverge\n goroutine: %v\n event:     %v", what, a.xmitPkts, b.xmitPkts)
	}
	if !reflect.DeepEqual(a.failed, b.failed) {
		t.Fatalf("%s: failed ranks diverge: %v vs %v", what, a.failed, b.failed)
	}
	if !reflect.DeepEqual(a.dead, b.dead) {
		t.Fatalf("%s: dead nodes diverge: %v vs %v", what, a.dead, b.dead)
	}
}

// equivMachine returns a contention-free machine with at least np cores:
// with Contention on, concurrent same-node senders race for NIC slots in
// wall-clock order under the goroutine engine, which is exactly the
// nondeterminism the pin must exclude to have a well-defined expectation.
func equivMachine(np int) *netsim.Machine {
	var m *netsim.Machine
	switch {
	case np <= 8:
		m = testMachine()
	case np <= 48:
		m = netsim.PlaFRIM(2)
	default:
		m = netsim.MultiSwitch(2, (np+47)/48)
	}
	m.Contention = false
	return m
}

// equivWorkload mixes the runtime's machinery: an eager and a rendezvous
// ring, compute skew, collectives (monitored as Coll), and a fan-in to rank
// 0 — all with specific sources, so the goroutine engine is deterministic.
func equivWorkload(c *Comm) error {
	np, rank := c.Size(), c.Rank()
	p := c.Proc()
	right, left := (rank+1)%np, (rank+np-1)%np
	for it := 0; it < 3; it++ {
		sz := 512 + it*30000 // eager and rendezvous sizes on every machine
		if err := c.SendN(right, it, sz); err != nil {
			return err
		}
		if _, err := c.Recv(left, it, nil); err != nil {
			return err
		}
		p.Compute(time.Duration(rank%7) * time.Microsecond)
	}
	if err := c.Bcast(make([]byte, 2048), 0); err != nil {
		return err
	}
	if err := c.Barrier(); err != nil {
		return err
	}
	recv := make([]byte, 8)
	if err := c.Allreduce(EncodeUint64s([]uint64{uint64(rank)}), recv, Uint64, OpSum); err != nil {
		return err
	}
	if want := uint64(np * (np - 1) / 2); DecodeUint64s(recv)[0] != want {
		return fmt.Errorf("rank %d: allreduce sum %d, want %d", rank, DecodeUint64s(recv)[0], want)
	}
	if rank != 0 {
		return c.SendN(0, 99, 1000+rank)
	}
	for s := 1; s < np; s++ {
		if _, err := c.Recv(s, 99, nil); err != nil {
			return err
		}
	}
	return nil
}

func runEngine(t *testing.T, np int, eng Engine, fn func(c *Comm) error, opts ...Option) *World {
	t.Helper()
	w, err := NewWorld(equivMachine(np), np, append(opts, WithEngine(eng))...)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunWithTimeout(2*time.Minute, fn); err != nil {
		t.Fatalf("np=%d engine=%s: %v", np, eng.Name(), err)
	}
	return w
}

func TestEngineEquivalence(t *testing.T) {
	for _, np := range []int{4, 48, 256} {
		t.Run(fmt.Sprintf("np%d", np), func(t *testing.T) {
			wg := runEngine(t, np, EngineGoroutine, equivWorkload)
			we := runEngine(t, np, EngineEvent, equivWorkload)
			requireSameFP(t, fingerprint(wg), fingerprint(we), fmt.Sprintf("np=%d", np))
			if got := we.EngineStats().Events; got == 0 {
				t.Fatal("event engine reported zero dispatches")
			}
			if got := wg.EngineStats().Events; got != 0 {
				t.Fatalf("goroutine engine reported %d dispatches, want 0", got)
			}
		})
	}
}

// TestEngineEquivalenceFaults pins fault outcomes across engines: a node
// death materializes at the same virtual time, kills the same ranks, and
// the survivors' traffic matrices agree bit for bit. Survivors detect the
// death through blocking receives (receive errors never touch the
// send-side matrices, so detection timing cannot leak into the pin).
func TestEngineEquivalenceFaults(t *testing.T) {
	// testMachine: cores 0-3 are node 0, cores 4-7 node 1. Ranks 0,1 on
	// node 0 survive; ranks 2,3 on node 1 die at 1ms.
	plan := &faults.Plan{Deaths: []faults.NodeDeath{{Node: 1, At: time.Millisecond}}}
	workload := func(c *Comm) error {
		np, rank := c.Size(), c.Rank()
		p := c.Proc()
		// Phase 1, well before the death: a monitored ring.
		if err := c.SendN((rank+1)%np, 1, 4096); err != nil {
			return err
		}
		if _, err := c.Recv((rank+np-1)%np, 1, nil); err != nil {
			return err
		}
		if rank >= 2 {
			// Phase 2 on the doomed node. Node death is total (the first
			// rank to die also fails its node sibling) and the goroutine
			// engine lets a rank run arbitrarily far ahead in wall-clock
			// time, so the deaths must be token-gated behind every send
			// that targets the doomed node — otherwise a straggling
			// survivor's phase-1 send toward rank 2 can hit an
			// already-failed destination and abort the world. Rank 3
			// therefore waits for a go-token from each survivor (sent
			// after all their doomed-bound traffic) before arming the
			// death; its tag-15 token then orders rank 2's death after
			// rank 3's own monitored sends. A collective cannot provide
			// either edge: its tree sends toward the doomed ranks race
			// the wall-clock visibility of the failed flags.
			if rank == 3 {
				if _, err := c.Recv(0, 16, nil); err != nil {
					return err
				}
				if _, err := c.Recv(1, 16, nil); err != nil {
					return err
				}
				if err := c.SendN(2, 15, 8); err != nil {
					return err
				}
			} else if _, err := c.Recv(3, 15, nil); err != nil {
				return err
			}
			// Run past the death time; the next operation materializes the
			// failure before anything is recorded or transmitted.
			p.Compute(2 * time.Millisecond)
			return c.SendN(0, 2, 64)
		}
		// Survivors: all sends toward the doomed node are done — release
		// the deaths, then block on the dead ranks until the failure
		// surfaces.
		if err := c.SendN(3, 16, 8); err != nil {
			return err
		}
		if _, err := c.Recv(rank+2, 2, nil); !errors.Is(err, ErrProcFailed) {
			return fmt.Errorf("rank %d: recv from dead rank: %v, want ErrProcFailed", rank, err)
		}
		// Post-failure traffic between survivors still monitors normally.
		peer := 1 - rank
		if err := c.SendN(peer, 3, 2222); err != nil {
			return err
		}
		if _, err := c.Recv(peer, 3, nil); err != nil {
			return err
		}
		return nil
	}
	build := func(eng Engine) *World {
		w, err := NewWorld(testMachine(), 4, WithPlacement([]int{0, 1, 4, 5}),
			WithFaultPlan(plan), WithEngine(eng))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.RunWithTimeout(time.Minute, workload); err != nil {
			t.Fatalf("engine %s: %v", eng.Name(), err)
		}
		return w
	}
	wg := build(EngineGoroutine)
	we := build(EngineEvent)
	for _, w := range []*World{wg, we} {
		if got := w.FailedRanks(); !reflect.DeepEqual(got, []int{2, 3}) {
			t.Fatalf("FailedRanks = %v, want [2 3]", got)
		}
		if got := w.DeadNodes(); !reflect.DeepEqual(got, []int{1}) {
			t.Fatalf("DeadNodes = %v, want [1]", got)
		}
	}
	requireSameFP(t, fingerprint(wg), fingerprint(we), "faults")
}

// TestEventEngineReplay runs the same configuration twice on the event
// engine and requires identical results AND identical scheduling work —
// the replayability claim.
func TestEventEngineReplay(t *testing.T) {
	w1 := runEngine(t, 48, EngineEvent, equivWorkload)
	w2 := runEngine(t, 48, EngineEvent, equivWorkload)
	requireSameFP(t, fingerprint(w1), fingerprint(w2), "replay")
	if a, b := w1.EngineStats().Events, w2.EngineStats().Events; a != b {
		t.Fatalf("replay dispatched %d events vs %d", b, a)
	}
}

// TestEventEngineDeadlock: a cyclic wait that would hang the goroutine
// engine (until a watchdog fires) is detected immediately by the event
// engine and surfaced as ErrDeadlock.
func TestEventEngineDeadlock(t *testing.T) {
	w, err := NewWorld(testMachine(), 2, WithEngine(EngineEvent))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		// Both ranks receive first: nobody ever sends.
		_, err := c.Recv(1-c.Rank(), 0, nil)
		return err
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run returned %v, want ErrDeadlock", err)
	}
}

// TestEventEngineVirtualTimeout: under the event engine RecvTimeout's
// deadline is virtual time, so an expired wait advances the clock exactly
// to the deadline — no wall clock anywhere.
func TestEventEngineVirtualTimeout(t *testing.T) {
	w, err := NewWorld(testMachine(), 2, WithEngine(EngineEvent))
	if err != nil {
		t.Fatal(err)
	}
	const d = 5 * time.Millisecond
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return nil // never sends
		}
		_, err := c.RecvTimeout(1, 0, nil, d)
		if !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("RecvTimeout: %v, want ErrTimeout", err)
		}
		if got := c.Proc().Clock(); got != d {
			return fmt.Errorf("clock after virtual timeout = %v, want %v", got, d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// And a message that arrives in virtual time before the deadline is
	// delivered normally.
	w2, err := NewWorld(testMachine(), 2, WithEngine(EngineEvent))
	if err != nil {
		t.Fatal(err)
	}
	err = w2.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			c.Proc().Compute(time.Millisecond)
			return c.SendN(0, 0, 256)
		}
		st, err := c.RecvTimeout(1, 0, nil, d)
		if err != nil {
			return err
		}
		if st.Size != 256 {
			return fmt.Errorf("received %d bytes, want 256", st.Size)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEngineByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Engine
		ok   bool
	}{
		{"", nil, true},
		{"auto", nil, true},
		{"goroutine", EngineGoroutine, true},
		{"event", EngineEvent, true},
		{"threads", nil, false},
	} {
		got, err := EngineByName(tc.name)
		if (err == nil) != tc.ok {
			t.Fatalf("EngineByName(%q) error = %v", tc.name, err)
		}
		if got != tc.want {
			t.Fatalf("EngineByName(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestEngineAutoSelection checks the size-based default: small worlds run
// on goroutines, worlds beyond EngineAutoThreshold switch to the event
// engine unless an explicit engine was configured.
func TestEngineAutoSelection(t *testing.T) {
	small := newTestWorld(t, 4)
	if got := small.Engine().Name(); got != "goroutine" {
		t.Fatalf("small world engine = %s, want goroutine", got)
	}
	big, err := NewWorld(netsim.PlaFRIM(350), 8400, nil...)
	if err != nil {
		t.Fatal(err)
	}
	if got := big.Engine().Name(); got != "event" {
		t.Fatalf("world of 8400 ranks engine = %s, want event", got)
	}
	forced, err := NewWorld(netsim.PlaFRIM(350), 8400, WithEngine(EngineGoroutine))
	if err != nil {
		t.Fatal(err)
	}
	if got := forced.Engine().Name(); got != "goroutine" {
		t.Fatalf("forced engine = %s, want goroutine", got)
	}
}
