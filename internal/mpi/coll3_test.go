package mpi

import (
	"errors"
	"fmt"
	"testing"
)

func TestAlltoallv(t *testing.T) {
	const np = 4
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		me := c.Rank()
		// Rank i sends j+1 bytes of value 10*i+j to rank j.
		scounts := make([]int, np)
		sdispls := make([]int, np)
		total := 0
		for j := 0; j < np; j++ {
			scounts[j] = j + 1
			sdispls[j] = total
			total += j + 1
		}
		send := make([]byte, total)
		for j := 0; j < np; j++ {
			for k := 0; k < scounts[j]; k++ {
				send[sdispls[j]+k] = byte(10*me + j)
			}
		}
		// Everyone receives me+1 bytes from each rank.
		rcounts := make([]int, np)
		rdispls := make([]int, np)
		rtotal := 0
		for j := 0; j < np; j++ {
			rcounts[j] = me + 1
			rdispls[j] = rtotal
			rtotal += me + 1
		}
		recv := make([]byte, rtotal)
		if err := c.Alltoallv(send, scounts, sdispls, recv, rcounts, rdispls); err != nil {
			return err
		}
		for j := 0; j < np; j++ {
			for k := 0; k < rcounts[j]; k++ {
				if got := recv[rdispls[j]+k]; got != byte(10*j+me) {
					return fmt.Errorf("rank %d block from %d = %d, want %d", me, j, got, 10*j+me)
				}
			}
		}
		return nil
	})
}

func TestAlltoallvValidation(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		two := []int{1, 1}
		zeroes := []int{0, 0}
		if err := c.Alltoallv(nil, []int{1}, zeroes, nil, two, zeroes); err == nil {
			return errors.New("short scounts should fail")
		}
		if err := c.Alltoallv(make([]byte, 1), two, []int{0, 5}, make([]byte, 2), two, []int{0, 1}); err == nil {
			return errors.New("out-of-range send block should fail")
		}
		return nil
	})
}

func TestCreateSub(t *testing.T) {
	const np = 6
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		// Members in a deliberate non-ascending order: ranks get the
		// positions in the list.
		group := []int{4, 1, 3}
		sub, err := c.CreateSub(group)
		if err != nil {
			return err
		}
		member := c.Rank() == 4 || c.Rank() == 1 || c.Rank() == 3
		if !member {
			if sub != nil {
				return errors.New("non-member got a communicator")
			}
			return nil
		}
		want := map[int]int{4: 0, 1: 1, 3: 2}[c.Rank()]
		if sub.Rank() != want {
			return fmt.Errorf("world rank %d got sub rank %d, want %d", c.Rank(), sub.Rank(), want)
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		return sub.Barrier()
	})
}

func TestCreateSubValidation(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if _, err := c.CreateSub([]int{0, 0}); err == nil {
			return errors.New("duplicate member should fail")
		}
		if _, err := c.CreateSub([]int{7}); err == nil {
			return errors.New("out-of-range member should fail")
		}
		return nil
	})
}

func TestSplitByNode(t *testing.T) {
	// Default packed placement on a 2x2x2 machine: ranks 0-3 on node 0,
	// 4-7 on node 1.
	const np = 8
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		sub, err := c.SplitByNode()
		if err != nil {
			return err
		}
		if sub.Size() != 4 {
			return fmt.Errorf("node comm size %d, want 4", sub.Size())
		}
		wantFirst := (c.Rank() / 4) * 4
		if sub.WorldRank(0) != wantFirst {
			return fmt.Errorf("node comm starts at world rank %d, want %d", sub.WorldRank(0), wantFirst)
		}
		return sub.Barrier()
	})
}

func TestGroupRanksByNode(t *testing.T) {
	const np = 8
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		groups := c.GroupRanksByNode()
		if len(groups) != 2 {
			return fmt.Errorf("%d node groups, want 2", len(groups))
		}
		for g, members := range groups {
			for i, r := range members {
				if r != g*4+i {
					return fmt.Errorf("groups = %v", groups)
				}
			}
		}
		return nil
	})
}

func TestAllgatherv(t *testing.T) {
	const np = 5
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		counts := []int{1, 2, 3, 4, 5}
		displs := []int{0, 1, 3, 6, 10}
		mine := make([]byte, counts[c.Rank()])
		for i := range mine {
			mine[i] = byte(c.Rank() + 1)
		}
		recv := make([]byte, 15)
		if err := c.Allgatherv(mine, recv, counts, displs); err != nil {
			return err
		}
		for i := 0; i < np; i++ {
			for k := 0; k < counts[i]; k++ {
				if recv[displs[i]+k] != byte(i+1) {
					return fmt.Errorf("rank %d sees %v", c.Rank(), recv)
				}
			}
		}
		return nil
	})
}

func TestAllgathervValidation(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if err := c.Allgatherv(nil, nil, []int{1}, []int{0}); err == nil {
			return errors.New("short counts should fail")
		}
		if err := c.Allgatherv(make([]byte, 3), make([]byte, 2), []int{1, 1}, []int{0, 1}); err == nil {
			return errors.New("send/count mismatch should fail")
		}
		if err := c.Allgatherv(make([]byte, 1), make([]byte, 1), []int{1, 5}, []int{0, 1}); err == nil {
			return errors.New("overflowing block should fail")
		}
		return nil
	})
}
