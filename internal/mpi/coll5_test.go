package mpi

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// engines lists the execution engines every algorithm test runs on; the
// nil entry is the default goroutine engine.
func testEngines(t *testing.T) map[string]Engine {
	t.Helper()
	ev, err := EngineByName("event")
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Engine{"goroutine": nil, "event": ev}
}

func newEngineWorld(t *testing.T, np int, e Engine, opts ...Option) *World {
	t.Helper()
	if e != nil {
		opts = append(opts, WithEngine(e))
	}
	mach := testMachine()
	if np > 8 {
		t.Fatalf("testMachine has 8 cores, np=%d", np)
	}
	w, err := NewWorld(mach, np, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAllreduceRingMatchesAllreduce(t *testing.T) {
	for name, eng := range testEngines(t) {
		for _, np := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
			w := newEngineWorld(t, np, eng)
			run(t, w, func(c *Comm) error {
				vals := make([]float64, 5) // 5 elements over up to 8 ranks: some empty blocks
				for i := range vals {
					vals[i] = float64((c.Rank() + 1) * (i + 1))
				}
				send := EncodeFloat64s(vals)
				r1 := make([]byte, len(send))
				r2 := make([]byte, len(send))
				if err := c.Allreduce(send, r1, Float64, OpSum); err != nil {
					return err
				}
				if err := c.AllreduceRing(send, r2, Float64, OpSum); err != nil {
					return err
				}
				if !bytes.Equal(r1, r2) {
					return fmt.Errorf("%s np=%d rank=%d: ring %v vs default %v",
						name, np, c.Rank(), DecodeFloat64s(r2), DecodeFloat64s(r1))
				}
				return nil
			})
		}
	}
}

func TestAllreduceRabMatchesAllreduce(t *testing.T) {
	for name, eng := range testEngines(t) {
		for _, np := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
			w := newEngineWorld(t, np, eng)
			run(t, w, func(c *Comm) error {
				vals := []int{c.Rank() + 1, -c.Rank(), 7 * c.Rank(), 3, c.Rank() * c.Rank(), 11, -5}
				send := EncodeInts(vals)
				r1 := make([]byte, len(send))
				r2 := make([]byte, len(send))
				if err := c.Allreduce(send, r1, Int64, OpSum); err != nil {
					return err
				}
				if err := c.AllreduceRab(send, r2, Int64, OpSum); err != nil {
					return err
				}
				if !bytes.Equal(r1, r2) {
					return fmt.Errorf("%s np=%d rank=%d: rab %v vs default %v",
						name, np, c.Rank(), DecodeInts(r2), DecodeInts(r1))
				}
				return nil
			})
		}
	}
}

func TestAllreduceRabMax(t *testing.T) {
	for _, np := range []int{3, 6} { // non-power-of-two exercises the fold
		w := newTestWorld(t, np)
		run(t, w, func(c *Comm) error {
			send := EncodeInts([]int{c.Rank() * 7, -c.Rank()})
			recv := make([]byte, len(send))
			if err := c.AllreduceRab(send, recv, Int64, OpMax); err != nil {
				return err
			}
			got := DecodeInts(recv)
			if got[0] != (np-1)*7 || got[1] != 0 {
				return fmt.Errorf("np=%d rank %d: max = %v", np, c.Rank(), got)
			}
			return nil
		})
	}
}

// ragged per-pair counts for the alltoallv tests: rank i sends (i+j)%3
// elements to rank j (some blocks empty).
func raggedCounts(me, np int) (send []byte, scounts, sdispls []int, rcounts, rdispls []int, total int) {
	scounts = make([]int, np)
	sdispls = make([]int, np)
	rcounts = make([]int, np)
	rdispls = make([]int, np)
	off := 0
	for j := 0; j < np; j++ {
		scounts[j] = (me + j) % 3
		sdispls[j] = off
		off += scounts[j]
	}
	send = make([]byte, off)
	for j := 0; j < np; j++ {
		for k := 0; k < scounts[j]; k++ {
			send[sdispls[j]+k] = byte(100 + me*10 + j)
		}
	}
	off = 0
	for j := 0; j < np; j++ {
		rcounts[j] = (j + me) % 3
		rdispls[j] = off
		off += rcounts[j]
	}
	return send, scounts, sdispls, rcounts, rdispls, off
}

func TestAlltoallvBruckMatchesPairwise(t *testing.T) {
	for name, eng := range testEngines(t) {
		for _, np := range []int{1, 2, 3, 4, 5, 7, 8} {
			w := newEngineWorld(t, np, eng)
			run(t, w, func(c *Comm) error {
				send, sc, sd, rc, rd, rtot := raggedCounts(c.Rank(), np)
				r1 := make([]byte, rtot)
				r2 := make([]byte, rtot)
				if err := c.Alltoallv(send, sc, sd, r1, rc, rd); err != nil {
					return err
				}
				if err := c.AlltoallvBruck(send, sc, sd, r2, rc, rd); err != nil {
					return err
				}
				if !bytes.Equal(r1, r2) {
					return fmt.Errorf("%s np=%d rank=%d: bruck %v vs pairwise %v", name, np, c.Rank(), r2, r1)
				}
				return nil
			})
		}
	}
}

func TestAlltoallvBruckLargeUnevenBlocks(t *testing.T) {
	const np = 6
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		scounts := make([]int, np)
		sdispls := make([]int, np)
		off := 0
		for j := 0; j < np; j++ {
			scounts[j] = 512*j + c.Rank() // 0-byte block to rank 0 from rank 0
			sdispls[j] = off
			off += scounts[j]
		}
		send := make([]byte, off)
		for j := 0; j < np; j++ {
			for k := 0; k < scounts[j]; k++ {
				send[sdispls[j]+k] = byte(c.Rank() ^ j ^ k)
			}
		}
		rcounts := make([]int, np)
		rdispls := make([]int, np)
		off = 0
		for j := 0; j < np; j++ {
			rcounts[j] = 512*c.Rank() + j
			rdispls[j] = off
			off += rcounts[j]
		}
		recv := make([]byte, off)
		if err := c.AlltoallvBruck(send, scounts, sdispls, recv, rcounts, rdispls); err != nil {
			return err
		}
		for j := 0; j < np; j++ {
			for k := 0; k < rcounts[j]; k++ {
				if got, want := recv[rdispls[j]+k], byte(j^c.Rank()^k); got != want {
					return fmt.Errorf("rank %d block from %d byte %d = %d, want %d", c.Rank(), j, k, got, want)
				}
			}
		}
		return nil
	})
}

// The edge-case matrix of the satellite: aliased send/recv, zero-length
// buffers, and np=1, across the allreduce variants, Scan/Exscan, and the
// alltoallv algorithms, on both engines.

func TestCollectiveAliasedBuffers(t *testing.T) {
	type alg struct {
		name string
		call func(c *Comm, buf []byte) error
	}
	algs := []alg{
		{"allreduce", func(c *Comm, b []byte) error { return c.Allreduce(b, b, Int64, OpSum) }},
		{"allreduce.rd", func(c *Comm, b []byte) error { return c.AllreduceRD(b, b, Int64, OpSum) }},
		{"allreduce.ring", func(c *Comm, b []byte) error { return c.AllreduceRing(b, b, Int64, OpSum) }},
		{"allreduce.rab", func(c *Comm, b []byte) error { return c.AllreduceRab(b, b, Int64, OpSum) }},
		{"scan", func(c *Comm, b []byte) error { return c.Scan(b, b, Int64, OpSum) }},
	}
	for name, eng := range testEngines(t) {
		for _, np := range []int{1, 3, 4, 5} {
			for _, a := range algs {
				w := newEngineWorld(t, np, eng)
				var want []int
				run(t, w, func(c *Comm) error {
					// Reference result with distinct buffers.
					send := EncodeInts([]int{c.Rank() + 1, 2 * c.Rank()})
					ref := make([]byte, len(send))
					var err error
					switch a.name {
					case "scan":
						err = c.Scan(send, ref, Int64, OpSum)
					default:
						err = c.Allreduce(send, ref, Int64, OpSum)
					}
					if err != nil {
						return err
					}
					// Same operation in place.
					buf := EncodeInts([]int{c.Rank() + 1, 2 * c.Rank()})
					if err := a.call(c, buf); err != nil {
						return err
					}
					if !bytes.Equal(buf, ref) {
						return fmt.Errorf("%s %s np=%d rank=%d aliased: %v want %v",
							name, a.name, np, c.Rank(), DecodeInts(buf), DecodeInts(ref))
					}
					_ = want
					return nil
				})
			}
		}
	}
}

func TestExscanAliasedBuffer(t *testing.T) {
	for name, eng := range testEngines(t) {
		const np = 5
		w := newEngineWorld(t, np, eng)
		run(t, w, func(c *Comm) error {
			buf := EncodeInts([]int{c.Rank() + 1})
			if err := c.Exscan(buf, buf, Int64, OpSum); err != nil {
				return err
			}
			got := DecodeInts(buf)[0]
			if c.Rank() == 0 {
				if got != 1 { // untouched, as in MPI
					return fmt.Errorf("%s: rank 0 exscan touched aliased buffer: %d", name, got)
				}
				return nil
			}
			want := c.Rank() * (c.Rank() + 1) / 2
			if got != want {
				return fmt.Errorf("%s: rank %d aliased exscan = %d, want %d", name, c.Rank(), got, want)
			}
			return nil
		})
	}
}

func TestCollectiveZeroLengthBuffers(t *testing.T) {
	for name, eng := range testEngines(t) {
		for _, np := range []int{1, 4, 5} {
			w := newEngineWorld(t, np, eng)
			run(t, w, func(c *Comm) error {
				var e []byte
				zc := make([]int, np)
				zd := make([]int, np)
				steps := []struct {
					what string
					err  error
				}{
					{"allreduce", c.Allreduce(e, e, Int64, OpSum)},
					{"allreduce.rd", c.AllreduceRD(e, e, Int64, OpSum)},
					{"allreduce.ring", c.AllreduceRing(e, e, Int64, OpSum)},
					{"allreduce.rab", c.AllreduceRab(e, e, Int64, OpSum)},
					{"scan", c.Scan(e, e, Int64, OpSum)},
					{"exscan", c.Exscan(e, e, Int64, OpSum)},
					{"alltoallv", c.Alltoallv(e, zc, zd, e, zc, zd)},
					{"alltoallv.bruck", c.AlltoallvBruck(e, zc, zd, e, zc, zd)},
				}
				for _, s := range steps {
					if s.err != nil {
						return fmt.Errorf("%s np=%d rank=%d %s with zero-length buffers: %v", name, np, c.Rank(), s.what, s.err)
					}
				}
				return nil
			})
		}
	}
}

func TestCollectiveSingleRank(t *testing.T) {
	for name, eng := range testEngines(t) {
		w := newEngineWorld(t, 1, eng)
		run(t, w, func(c *Comm) error {
			send := EncodeInts([]int{42})
			for _, v := range []struct {
				what string
				call func(recv []byte) error
			}{
				{"allreduce", func(r []byte) error { return c.Allreduce(send, r, Int64, OpSum) }},
				{"allreduce.rd", func(r []byte) error { return c.AllreduceRD(send, r, Int64, OpSum) }},
				{"allreduce.ring", func(r []byte) error { return c.AllreduceRing(send, r, Int64, OpSum) }},
				{"allreduce.rab", func(r []byte) error { return c.AllreduceRab(send, r, Int64, OpSum) }},
				{"scan", func(r []byte) error { return c.Scan(send, r, Int64, OpSum) }},
			} {
				recv := make([]byte, len(send))
				if err := v.call(recv); err != nil {
					return fmt.Errorf("%s np=1 %s: %v", name, v.what, err)
				}
				if got := DecodeInts(recv)[0]; got != 42 {
					return fmt.Errorf("%s np=1 %s = %d, want 42", name, v.what, got)
				}
			}
			// Exscan at np=1 leaves recv untouched; alltoallv round-trips
			// the single local block.
			recv := EncodeInts([]int{-1})
			if err := c.Exscan(send, recv, Int64, OpSum); err != nil {
				return err
			}
			if got := DecodeInts(recv)[0]; got != -1 {
				return fmt.Errorf("%s np=1 exscan touched recv: %d", name, got)
			}
			one := []byte{9}
			out := make([]byte, 1)
			if err := c.AlltoallvBruck(one, []int{1}, []int{0}, out, []int{1}, []int{0}); err != nil {
				return err
			}
			if out[0] != 9 {
				return fmt.Errorf("%s np=1 bruck alltoallv = %v", name, out)
			}
			return nil
		})
	}
}

// The new algorithms must be monitored as Coll traffic like every other
// collective, and their virtual cost must be engine-independent (the
// detailed cross-engine pin lives in internal/coll's pin test).
func TestNewAlgorithmsMonitoredAsColl(t *testing.T) {
	const np = 5
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		send := EncodeInts([]int{1, 2, 3})
		recv := make([]byte, len(send))
		if err := c.AllreduceRing(send, recv, Int64, OpSum); err != nil {
			return err
		}
		if err := c.AllreduceRab(send, recv, Int64, OpSum); err != nil {
			return err
		}
		s, sc, sd, rc, rd, rtot := raggedCounts(c.Rank(), np)
		r := make([]byte, rtot)
		return c.AlltoallvBruck(s, sc, sd, r, rc, rd)
	})
	var p2p, coll uint64
	for r := 0; r < np; r++ {
		p2p += w.Proc(r).Monitor().TotalBytes(0)  // pml.P2P
		coll += w.Proc(r).Monitor().TotalBytes(1) // pml.Coll
	}
	if p2p != 0 {
		t.Fatalf("new algorithms leaked %d bytes into the P2P class", p2p)
	}
	if coll == 0 {
		t.Fatal("new algorithms recorded nothing")
	}
	if w.MaxClock() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestBcastSAGNonPowerOfTwo(t *testing.T) {
	for _, np := range []int{3, 5, 6, 7} {
		for root := 0; root < np; root += 2 {
			w := newTestWorld(t, np)
			run(t, w, func(c *Comm) error {
				buf := make([]byte, np*4)
				if c.Rank() == root {
					for i := range buf {
						buf[i] = byte(i ^ (root + 1))
					}
				}
				if err := c.BcastSAG(buf, root); err != nil {
					return err
				}
				for i := range buf {
					if buf[i] != byte(i^(root+1)) {
						return fmt.Errorf("np=%d root=%d rank=%d byte %d = %d", np, root, c.Rank(), i, buf[i])
					}
				}
				return nil
			})
		}
	}
}

// AllgatherRD's non-power-of-two fallback must still account the call as
// its own span and MPI time (the satellite audit's divergence).
func TestAllgatherRDFallbackAccountsMPITime(t *testing.T) {
	const np = 5
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		send := []byte{byte(c.Rank())}
		recv := make([]byte, np)
		if err := c.AllgatherRD(send, recv); err != nil {
			return err
		}
		if c.Proc().MPITime() <= 0 {
			return fmt.Errorf("rank %d: fallback allgather.rd not accounted as MPI time", c.Rank())
		}
		return nil
	})
}

// A long virtual run must still finish quickly in wall time (sanity bound
// on algorithmic blowup in the new code paths).
func TestNewAlgorithmsTerminate(t *testing.T) {
	w := newTestWorld(t, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = w.Run(func(c *Comm) error {
			send := make([]byte, 1<<16)
			recv := make([]byte, 1<<16)
			if err := c.AllreduceRing(send, recv, Byte, OpSum); err != nil {
				return err
			}
			return c.AllreduceRab(send, recv, Byte, OpSum)
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("new algorithms did not terminate")
	}
}
