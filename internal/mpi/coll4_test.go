package mpi

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mpimon/internal/netsim"
)

// TestAllgathervAssemblesIdentically exchanges rank-dependent
// variable-length blocks and checks every member assembles the same
// concatenation.
func TestAllgathervAssemblesIdentically(t *testing.T) {
	const np = 5
	w, err := NewWorld(netsim.PlaFRIM(1), np)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, np)
	displs := make([]int, np)
	total := 0
	for i := 0; i < np; i++ {
		counts[i] = i + 1 // rank i contributes i+1 bytes
		displs[i] = total
		total += counts[i]
	}
	want := make([]byte, total)
	for i := 0; i < np; i++ {
		for k := 0; k < counts[i]; k++ {
			want[displs[i]+k] = byte(10*i + k)
		}
	}
	var mu sync.Mutex
	got := make([][]byte, np)
	err = w.Run(func(c *Comm) error {
		me := c.Rank()
		send := make([]byte, counts[me])
		for k := range send {
			send[k] = byte(10*me + k)
		}
		recv := make([]byte, total)
		if err := c.Allgatherv(send, recv, counts, displs); err != nil {
			return err
		}
		mu.Lock()
		got[me] = recv
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < np; i++ {
		if !bytes.Equal(got[i], want) {
			t.Errorf("rank %d assembled %v, want %v", i, got[i], want)
		}
	}
}

func TestAllgathervRejectsBadGeometry(t *testing.T) {
	w, err := NewWorld(netsim.PlaFRIM(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		err := c.Allgatherv(make([]byte, 3), make([]byte, 2), []int{1, 1}, []int{0, 1})
		if err == nil {
			return fmt.Errorf("Allgatherv accepted a send buffer of the wrong length")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGatherStream checks blocks arrive in source order with the correct
// contents, and that the delivery buffer may be reused (root copies).
func TestGatherStream(t *testing.T) {
	const np, root = 6, 2
	w, err := NewWorld(netsim.PlaFRIM(1), np)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	blocks := make(map[int][]byte)
	err = w.Run(func(c *Comm) error {
		me := c.Rank()
		send := bytes.Repeat([]byte{byte(me + 1)}, me+1)
		return c.GatherStream(send, root, func(src int, block []byte) error {
			mu.Lock()
			order = append(order, src)
			blocks[src] = append([]byte(nil), block...)
			mu.Unlock()
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != np {
		t.Fatalf("delivered %d blocks, want %d", len(order), np)
	}
	for i, src := range order {
		if i != src {
			t.Errorf("delivery %d came from rank %d, want ascending source order", i, src)
		}
	}
	for src, b := range blocks {
		want := bytes.Repeat([]byte{byte(src + 1)}, src+1)
		if !bytes.Equal(b, want) {
			t.Errorf("rank %d block = %v, want %v", src, b, want)
		}
	}
}

func TestGatherStreamDeliverError(t *testing.T) {
	w, err := NewWorld(netsim.PlaFRIM(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("deliver failed")
	err = w.Run(func(c *Comm) error {
		err := c.GatherStream([]byte{byte(c.Rank())}, 0, func(src int, block []byte) error {
			if src == 1 {
				return boom
			}
			return nil
		})
		if c.Rank() == 0 && err == nil {
			return fmt.Errorf("GatherStream swallowed the deliver error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
