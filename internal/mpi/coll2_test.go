package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestAllreduceRDMatchesAllreduce(t *testing.T) {
	for _, np := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16} {
		w := newTestWorld(t, minInt(np, 8))
		np := w.Size()
		run(t, w, func(c *Comm) error {
			send := EncodeFloat64s([]float64{float64(c.Rank() + 1), -2, float64(c.Rank() * c.Rank())})
			r1 := make([]byte, len(send))
			r2 := make([]byte, len(send))
			if err := c.Allreduce(send, r1, Float64, OpSum); err != nil {
				return err
			}
			if err := c.AllreduceRD(send, r2, Float64, OpSum); err != nil {
				return err
			}
			if !bytes.Equal(r1, r2) {
				return fmt.Errorf("np=%d rank=%d: RD %v vs reduce+bcast %v",
					np, c.Rank(), DecodeFloat64s(r2), DecodeFloat64s(r1))
			}
			return nil
		})
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestAllreduceRDMax(t *testing.T) {
	w := newTestWorld(t, 6) // non-power-of-two exercises the fold steps
	run(t, w, func(c *Comm) error {
		send := EncodeInts([]int{c.Rank() * 7})
		recv := make([]byte, len(send))
		if err := c.AllreduceRD(send, recv, Int64, OpMax); err != nil {
			return err
		}
		if got := DecodeInts(recv)[0]; got != 35 {
			return fmt.Errorf("rank %d: max = %d, want 35", c.Rank(), got)
		}
		return nil
	})
}

func TestReduceScatterBlock(t *testing.T) {
	const np = 4
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		// send[j] = rank + j for block j; sum over ranks of block j's
		// element = sum(ranks) + np*j.
		vals := make([]float64, np)
		for j := range vals {
			vals[j] = float64(c.Rank() + j)
		}
		send := EncodeFloat64s(vals)
		recv := make([]byte, 8)
		if err := c.ReduceScatterBlock(send, recv, Float64, OpSum); err != nil {
			return err
		}
		want := float64(0+1+2+3) + float64(np*c.Rank())
		if got := DecodeFloat64s(recv)[0]; got != want {
			return fmt.Errorf("rank %d got %v, want %v", c.Rank(), got, want)
		}
		return nil
	})
}

func TestReduceScatterBlockValidation(t *testing.T) {
	w := newTestWorld(t, 3)
	run(t, w, func(c *Comm) error {
		if err := c.ReduceScatterBlock(make([]byte, 10), make([]byte, 3), Byte, OpSum); err == nil {
			return errors.New("indivisible buffer should fail")
		}
		if err := c.ReduceScatterBlock(make([]byte, 9), make([]byte, 2), Byte, OpSum); err == nil {
			return errors.New("wrong recv size should fail")
		}
		return nil
	})
}

func TestScanInclusive(t *testing.T) {
	const np = 6
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		send := EncodeInts([]int{c.Rank() + 1})
		recv := make([]byte, len(send))
		if err := c.Scan(send, recv, Int64, OpSum); err != nil {
			return err
		}
		want := (c.Rank() + 1) * (c.Rank() + 2) / 2
		if got := DecodeInts(recv)[0]; got != want {
			return fmt.Errorf("rank %d scan = %d, want %d", c.Rank(), got, want)
		}
		return nil
	})
}

func TestExscan(t *testing.T) {
	const np = 5
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		send := EncodeInts([]int{c.Rank() + 1})
		recv := EncodeInts([]int{-99}) // rank 0's must stay untouched
		if err := c.Exscan(send, recv, Int64, OpSum); err != nil {
			return err
		}
		got := DecodeInts(recv)[0]
		if c.Rank() == 0 {
			if got != -99 {
				return fmt.Errorf("rank 0 exscan touched the buffer: %d", got)
			}
			return nil
		}
		want := c.Rank() * (c.Rank() + 1) / 2
		if got != want {
			return fmt.Errorf("rank %d exscan = %d, want %d", c.Rank(), got, want)
		}
		return nil
	})
}

func TestBcastSAG(t *testing.T) {
	for _, np := range []int{2, 4, 8} {
		for root := 0; root < np; root += 3 {
			w := newTestWorld(t, np)
			run(t, w, func(c *Comm) error {
				buf := make([]byte, np*8)
				if c.Rank() == root {
					for i := range buf {
						buf[i] = byte(i ^ root)
					}
				}
				if err := c.BcastSAG(buf, root); err != nil {
					return err
				}
				for i := range buf {
					if buf[i] != byte(i^root) {
						return fmt.Errorf("np=%d root=%d rank=%d byte %d = %d", np, root, c.Rank(), i, buf[i])
					}
				}
				return nil
			})
		}
	}
}

func TestBcastSAGMatchesBcastContent(t *testing.T) {
	const np = 8
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		a := make([]byte, 64)
		bb := make([]byte, 64)
		if c.Rank() == 2 {
			for i := range a {
				a[i] = byte(3 * i)
				bb[i] = byte(3 * i)
			}
		}
		if err := c.Bcast(a, 2); err != nil {
			return err
		}
		if err := c.BcastSAG(bb, 2); err != nil {
			return err
		}
		if !bytes.Equal(a, bb) {
			return fmt.Errorf("SAG and binomial bcast disagree on rank %d", c.Rank())
		}
		return nil
	})
}

func TestBcastSAGValidation(t *testing.T) {
	w := newTestWorld(t, 3)
	run(t, w, func(c *Comm) error {
		if err := c.BcastSAG(make([]byte, 7), 0); err == nil {
			return errors.New("indivisible buffer should fail")
		}
		return nil
	})
}

func TestAllgatherRDMatchesRing(t *testing.T) {
	for _, np := range []int{2, 4, 8} {
		w := newTestWorld(t, np)
		run(t, w, func(c *Comm) error {
			send := []byte{byte(50 + c.Rank()), byte(c.Rank())}
			r1 := make([]byte, np*2)
			r2 := make([]byte, np*2)
			if err := c.Allgather(send, r1); err != nil {
				return err
			}
			if err := c.AllgatherRD(send, r2); err != nil {
				return err
			}
			if !bytes.Equal(r1, r2) {
				return fmt.Errorf("np=%d rank=%d: RD %v vs ring %v", np, c.Rank(), r2, r1)
			}
			return nil
		})
	}
}

func TestAllgatherRDFallsBackForOddSizes(t *testing.T) {
	const np = 5
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		send := []byte{byte(c.Rank())}
		recv := make([]byte, np)
		if err := c.AllgatherRD(send, recv); err != nil {
			return err
		}
		for i := range recv {
			if recv[i] != byte(i) {
				return fmt.Errorf("fallback allgather wrong: %v", recv)
			}
		}
		return nil
	})
}

func TestGathervScatterv(t *testing.T) {
	const np = 4
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		// Rank i contributes i+1 bytes of value i.
		mine := make([]byte, c.Rank()+1)
		for i := range mine {
			mine[i] = byte(c.Rank())
		}
		counts := []int{1, 2, 3, 4}
		displs := []int{0, 1, 3, 6}
		var all []byte
		if c.Rank() == 0 {
			all = make([]byte, 10)
		}
		if err := c.Gatherv(mine, all, counts, displs, 0); err != nil {
			return err
		}
		if c.Rank() == 0 {
			want := []byte{0, 1, 1, 2, 2, 2, 3, 3, 3, 3}
			if !bytes.Equal(all, want) {
				return fmt.Errorf("gatherv = %v, want %v", all, want)
			}
		}
		// Scatter it back out.
		back := make([]byte, c.Rank()+1)
		if err := c.Scatterv(all, counts, displs, back, 0); err != nil {
			return err
		}
		for i := range back {
			if back[i] != byte(c.Rank()) {
				return fmt.Errorf("scatterv to rank %d = %v", c.Rank(), back)
			}
		}
		return nil
	})
}

func TestGathervValidation(t *testing.T) {
	w := newTestWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			// counts/displs overflow the recv buffer.
			if err := c.Gatherv([]byte{1}, make([]byte, 2), []int{1, 5}, []int{0, 1}, 0); err == nil {
				return errors.New("overflowing gatherv should fail")
			}
			// Consume rank 1's pending block with a correct call.
			return c.Gatherv([]byte{1}, make([]byte, 2), []int{1, 1}, []int{0, 1}, 0)
		}
		if err := c.Gatherv([]byte{9}, nil, nil, nil, 0); err != nil {
			return err
		}
		return c.Gatherv([]byte{9}, nil, nil, nil, 0)
	})
}

func TestVariantCollectivesAreMonitoredAsColl(t *testing.T) {
	const np = 4
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		send := EncodeInts([]int{1})
		recv := make([]byte, len(send))
		if err := c.AllreduceRD(send, recv, Int64, OpSum); err != nil {
			return err
		}
		if err := c.Scan(send, recv, Int64, OpSum); err != nil {
			return err
		}
		return nil
	})
	var p2p, coll uint64
	for r := 0; r < np; r++ {
		p2p += w.Proc(r).Monitor().TotalBytes(0)  // pml.P2P
		coll += w.Proc(r).Monitor().TotalBytes(1) // pml.Coll
	}
	if p2p != 0 {
		t.Fatalf("variant collectives leaked %d bytes into the P2P class", p2p)
	}
	if coll == 0 {
		t.Fatal("variant collectives recorded nothing")
	}
}
