package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mpimon/internal/netsim"
)

func TestDimsCreate(t *testing.T) {
	cases := []struct {
		n, nd int
		want  []int
	}{
		{12, 2, []int{4, 3}},
		{16, 2, []int{4, 4}},
		{8, 3, []int{2, 2, 2}},
		{7, 2, []int{7, 1}},
		{1, 3, []int{1, 1, 1}},
		{24, 2, []int{6, 4}},
	}
	for _, c := range cases {
		got, err := DimsCreate(c.n, c.nd)
		if err != nil {
			t.Fatal(err)
		}
		prod := 1
		for i, d := range got {
			prod *= d
			if d != c.want[i] {
				t.Errorf("DimsCreate(%d,%d) = %v, want %v", c.n, c.nd, got, c.want)
				break
			}
		}
		if prod != c.n {
			t.Fatalf("DimsCreate(%d,%d) = %v does not multiply out", c.n, c.nd, got)
		}
	}
	if _, err := DimsCreate(0, 2); err == nil {
		t.Fatal("zero nodes should fail")
	}
	if _, err := DimsCreate(4, 0); err == nil {
		t.Fatal("zero dims should fail")
	}
}

func TestCartCoordsRankRoundTrip(t *testing.T) {
	const np = 6
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		cc, err := c.CartCreate([]int{2, 3}, []bool{false, true}, false)
		if err != nil {
			return err
		}
		for r := 0; r < cc.Size(); r++ {
			coords, err := cc.Coords(r)
			if err != nil {
				return err
			}
			back, err := cc.CartRank(coords)
			if err != nil {
				return err
			}
			if back != r {
				return fmt.Errorf("coords/rank round trip broke: %d -> %v -> %d", r, coords, back)
			}
		}
		// Row-major: rank 4 = (1,1) in a 2x3 grid.
		coords, _ := cc.Coords(4)
		if coords[0] != 1 || coords[1] != 1 {
			return fmt.Errorf("Coords(4) = %v, want [1 1]", coords)
		}
		// Periodic wrap in dim 1, not in dim 0.
		if r, err := cc.CartRank([]int{0, -1}); err != nil || r != 2 {
			return fmt.Errorf("periodic wrap = %d, %v; want 2", r, err)
		}
		if _, err := cc.CartRank([]int{-1, 0}); err == nil {
			return errors.New("non-periodic out-of-range coordinate should fail")
		}
		return nil
	})
}

func TestCartShiftAndHaloExchange(t *testing.T) {
	const np = 8
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		cc, err := c.CartCreate([]int{4, 2}, []bool{true, false}, false)
		if err != nil {
			return err
		}
		// Dim 0 is periodic: every rank has both neighbours.
		src, dst, err := cc.Shift(0, 1)
		if err != nil {
			return err
		}
		if src == ProcNull || dst == ProcNull {
			return errors.New("periodic dimension produced ProcNull")
		}
		// Exchange ranks along the ring and verify.
		buf := make([]byte, 1)
		if _, err := cc.Sendrecv(dst, 0, []byte{byte(cc.Rank())}, src, 0, buf); err != nil {
			return err
		}
		if buf[0] != byte(src) {
			return fmt.Errorf("halo got %d, want %d", buf[0], src)
		}
		// Dim 1 is not periodic: edge ranks see ProcNull.
		coords, _ := cc.Coords(cc.Rank())
		src1, dst1, err := cc.Shift(1, 1)
		if err != nil {
			return err
		}
		if coords[1] == 0 && src1 != ProcNull {
			return fmt.Errorf("edge rank %d has src %d, want ProcNull", cc.Rank(), src1)
		}
		if coords[1] == 1 && dst1 != ProcNull {
			return fmt.Errorf("edge rank %d has dst %d, want ProcNull", cc.Rank(), dst1)
		}
		if _, _, err := cc.Shift(5, 1); err == nil {
			return errors.New("bad dimension should fail")
		}
		return nil
	})
}

func TestCartSurplusRanksGetNil(t *testing.T) {
	const np = 6
	w := newTestWorld(t, np)
	run(t, w, func(c *Comm) error {
		cc, err := c.CartCreate([]int{2, 2}, []bool{false, false}, false)
		if err != nil {
			return err
		}
		if c.Rank() >= 4 {
			if cc != nil {
				return errors.New("surplus rank got a grid communicator")
			}
			return nil
		}
		if cc.Size() != 4 {
			return fmt.Errorf("grid size %d", cc.Size())
		}
		return cc.Barrier()
	})
}

func TestCartCreateValidation(t *testing.T) {
	w := newTestWorld(t, 4)
	run(t, w, func(c *Comm) error {
		if _, err := c.CartCreate([]int{2, 2}, []bool{true}, false); err == nil {
			return errors.New("mismatched periodicity should fail")
		}
		if _, err := c.CartCreate([]int{0, 2}, []bool{true, true}, false); err == nil {
			return errors.New("zero dimension should fail")
		}
		if _, err := c.CartCreate([]int{3, 3}, []bool{true, true}, false); err == nil {
			return errors.New("oversized grid should fail")
		}
		return nil
	})
}

// TestCartReorderImprovesNeighbourLocality: on a scrambled placement, the
// reorder flag must co-locate grid neighbours better than the identity
// numbering — the MPI_Cart_create(reorder=1) promise, honoured here with
// TreeMatch.
func TestCartReorderImprovesNeighbourLocality(t *testing.T) {
	const np = 16
	mach := netsim.PlaFRIM(2) // 2 nodes x 24 cores
	// Scrambled placement across both nodes.
	place := make([]int, np)
	for i := range place {
		place[i] = (i * 19) % 48
	}
	crossEdges := func(reorder bool) int {
		w, err := NewWorld(cloneMach(mach), np, WithPlacement(place))
		if err != nil {
			t.Fatal(err)
		}
		cross := 0
		err = w.RunWithTimeout(time.Minute, func(c *Comm) error {
			cc, err := c.CartCreate([]int{4, 4}, []bool{false, false}, reorder)
			if err != nil {
				return err
			}
			if c.Rank() != 0 {
				return nil
			}
			// Count grid edges whose endpoints sit on different nodes.
			topo := w.Machine().Topo
			placement := w.Placement()
			coreOfGridRank := make([]int, cc.Size())
			for r, wr := range cc.Group() {
				coreOfGridRank[r] = placement[wr]
			}
			for r := 0; r < cc.Size(); r++ {
				coords, _ := cc.Coords(r)
				for d := 0; d < 2; d++ {
					c2 := append([]int(nil), coords...)
					c2[d]++
					nb, err := cc.CartRank(c2)
					if err != nil {
						continue
					}
					if !topo.SameNode(coreOfGridRank[r], coreOfGridRank[nb]) {
						cross++
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return cross
	}
	base := crossEdges(false)
	opt := crossEdges(true)
	if opt >= base {
		t.Fatalf("reorder did not reduce cross-node grid edges: %d -> %d", base, opt)
	}
}

func cloneMach(m *netsim.Machine) *netsim.Machine {
	c := *m
	return &c
}
