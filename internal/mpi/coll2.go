package mpi

// Additional collective algorithms. Like Open MPI's tuned collective
// component, the runtime offers several algorithms per operation: the
// defaults in coll.go are the ones the paper's experiments name (binomial
// bcast, binary-tree reduce, ring allgather); this file adds the variants
// used for large messages or power-of-two groups, plus the v-variants with
// per-rank block sizes. All decompose into point-to-point messages on the
// collective context, so the monitoring component sees them the same way.

import (
	"fmt"
)

const (
	tagRsct  = 12 << 20
	tagScan  = 13 << 20
	tagBsag  = 14 << 20
	tagGathv = 15 << 20
)

// AllreduceRD performs an allreduce with the recursive-doubling algorithm:
// log2(n) rounds of pairwise exchange-and-combine. For non-power-of-two
// groups the standard pre/post folding steps are applied. It is
// latency-optimal for short vectors, whereas Allreduce (reduce+bcast) moves
// less data at the root for long ones.
func (c *Comm) AllreduceRD(send, recv []byte, dt Datatype, op Op) error {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	defer c.span("allreduce.rd")()
	c.p.beginInternal()
	defer c.p.endInternal()
	return c.herr(c.allreduceRD(send, recv, dt, op))
}

func (c *Comm) allreduceRD(send, recv []byte, dt Datatype, op Op) error {
	if len(recv) != len(send) {
		return fmt.Errorf("mpi: allreduce buffers differ in length (%d vs %d)", len(send), len(recv))
	}
	n := len(c.group)
	ctx := c.collCtx()
	copy(recv, send)
	if n == 1 {
		return nil
	}

	// pof2 = largest power of two <= n.
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	size := len(send)

	// Pre-step: the first 2*rem ranks fold pairwise so that pof2 ranks
	// hold partial results.
	newRank := -1
	switch {
	case c.rank < 2*rem && c.rank%2 == 0:
		// Sends its data to rank+1 and sits out.
		if err := c.sendCopyOn(ctx, c.rank+1, tagRsct, recv); err != nil {
			return err
		}
	case c.rank < 2*rem:
		buf := make([]byte, size)
		if _, err := c.recvOn(ctx, c.rank-1, tagRsct, buf); err != nil {
			return err
		}
		if err := reduceInto(recv, buf, dt, op); err != nil {
			return err
		}
		newRank = c.rank / 2
	default:
		newRank = c.rank - rem
	}

	if newRank >= 0 {
		buf := make([]byte, size)
		for mask := 1; mask < pof2; mask <<= 1 {
			newPeer := newRank ^ mask
			peer := newPeer + rem
			if newPeer < rem {
				peer = newPeer * 2
				peer++ // odd ranks of the folded region hold the data
			}
			if _, err := c.sendrecvOn(ctx, peer, tagRsct+mask, recv, peer, tagRsct+mask, buf); err != nil {
				return err
			}
			if err := reduceInto(recv, buf, dt, op); err != nil {
				return err
			}
		}
	}

	// Post-step: folded-out even ranks get the result from their partner.
	if c.rank < 2*rem {
		if c.rank%2 == 0 {
			if _, err := c.recvOn(ctx, c.rank+1, tagRsct+1<<19, recv); err != nil {
				return err
			}
		} else {
			if err := c.sendCopyOn(ctx, c.rank-1, tagRsct+1<<19, recv); err != nil {
				return err
			}
		}
	}
	return nil
}

// sendrecvOn is a combined exchange on an explicit context; the send
// payload is copied through the pooled buffers (the caller keeps data).
func (c *Comm) sendrecvOn(ctx, dst, sendTag int, data []byte, src, recvTag int, buf []byte) (Status, error) {
	if err := c.sendCopyOn(ctx, dst, sendTag, data); err != nil {
		return Status{}, err
	}
	return c.recvOn(ctx, src, recvTag, buf)
}

// ReduceScatterBlock reduces elementwise across the group and leaves block
// i of the result (len(send)/n bytes) on rank i, using n-1 pairwise
// exchange rounds. send must be a multiple of n times the element size;
// recv receives one block.
func (c *Comm) ReduceScatterBlock(send, recv []byte, dt Datatype, op Op) error {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	defer c.span("reduce_scatter_block")()
	c.p.beginInternal()
	defer c.p.endInternal()
	return c.herr(c.reduceScatterBlock(send, recv, dt, op))
}

func (c *Comm) reduceScatterBlock(send, recv []byte, dt Datatype, op Op) error {
	n := len(c.group)
	if len(send)%n != 0 {
		return fmt.Errorf("mpi: reduce-scatter buffer of %d bytes is not divisible by %d ranks", len(send), n)
	}
	blk := len(send) / n
	if len(recv) != blk {
		return fmt.Errorf("mpi: reduce-scatter recv buffer has %d bytes, want %d", len(recv), blk)
	}
	ctx := c.collCtx()
	acc := append([]byte(nil), send[c.rank*blk:(c.rank+1)*blk]...)
	buf := make([]byte, blk)
	// Pairwise exchange: in round s, send the block owned by (rank+s) to
	// its owner and combine the block received for us.
	for s := 1; s < n; s++ {
		dst := (c.rank + s) % n
		src := (c.rank - s + n) % n
		if _, err := c.sendrecvOn(ctx, dst, tagRsct+s, send[dst*blk:(dst+1)*blk], src, tagRsct+s, buf); err != nil {
			return err
		}
		if err := reduceInto(acc, buf, dt, op); err != nil {
			return err
		}
	}
	copy(recv, acc)
	return nil
}

// Scan computes the inclusive prefix reduction: rank i's recv holds
// op(send_0, ..., send_i). Linear-chain algorithm.
func (c *Comm) Scan(send, recv []byte, dt Datatype, op Op) error {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	defer c.span("scan")()
	c.p.beginInternal()
	defer c.p.endInternal()
	return c.herr(c.scan(send, recv, dt, op))
}

func (c *Comm) scan(send, recv []byte, dt Datatype, op Op) error {
	if len(recv) != len(send) {
		return fmt.Errorf("mpi: scan buffers differ in length (%d vs %d)", len(send), len(recv))
	}
	ctx := c.collCtx()
	copy(recv, send)
	if c.rank > 0 {
		buf := make([]byte, len(send))
		if _, err := c.recvOn(ctx, c.rank-1, tagScan, buf); err != nil {
			return err
		}
		// Prefix order: earlier ranks combine on the left.
		if err := reduceInto(buf, send, dt, op); err != nil {
			return err
		}
		copy(recv, buf)
	}
	if c.rank < len(c.group)-1 {
		return c.sendCopyOn(ctx, c.rank+1, tagScan, recv)
	}
	return nil
}

// Exscan computes the exclusive prefix reduction: rank i's recv holds
// op(send_0, ..., send_{i-1}); rank 0's recv is left untouched, as in MPI.
func (c *Comm) Exscan(send, recv []byte, dt Datatype, op Op) error {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	defer c.span("exscan")()
	c.p.beginInternal()
	defer c.p.endInternal()
	return c.herr(c.exscan(send, recv, dt, op))
}

func (c *Comm) exscan(send, recv []byte, dt Datatype, op Op) error {
	if len(recv) != len(send) {
		return fmt.Errorf("mpi: exscan buffers differ in length (%d vs %d)", len(send), len(recv))
	}
	ctx := c.collCtx()
	n := len(c.group)
	var prefix []byte
	if c.rank > 0 {
		prefix = make([]byte, len(send))
		if _, err := c.recvOn(ctx, c.rank-1, tagScan, prefix); err != nil {
			return err
		}
	}
	if c.rank < n-1 {
		if prefix == nil {
			if err := c.sendCopyOn(ctx, c.rank+1, tagScan, send); err != nil {
				return err
			}
		} else {
			// Fold send into the outgoing prefix before recv is written,
			// so an aliased recv (send == recv) still reads the original
			// contribution.
			tmp := append([]byte(nil), prefix...)
			if err := reduceInto(tmp, send, dt, op); err != nil {
				return err
			}
			if err := c.sendOn(ctx, c.rank+1, tagScan, tmp, len(tmp)); err != nil {
				return err
			}
		}
	}
	if prefix != nil {
		copy(recv, prefix)
	}
	return nil
}

// BcastSAG broadcasts with the scatter-allgather (van de Geijn) algorithm,
// the usual choice for large buffers: the root scatters blocks binomially,
// then a ring allgather reassembles them everywhere. The buffer length must
// be divisible by the group size.
func (c *Comm) BcastSAG(buf []byte, root int) error {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	defer c.span("bcast.sag")()
	c.p.beginInternal()
	defer c.p.endInternal()
	return c.herr(c.bcastSAG(buf, root))
}

func (c *Comm) bcastSAG(buf []byte, root int) error {
	n := len(c.group)
	if err := c.checkRank(root, "root"); err != nil {
		return err
	}
	if n == 1 {
		return nil
	}
	if len(buf)%n != 0 {
		return fmt.Errorf("mpi: scatter-allgather bcast needs a buffer divisible by %d ranks, got %d bytes", n, len(buf))
	}
	blk := len(buf) / n
	ctx := c.collCtx()

	// Scatter: relative rank r receives blocks [r, r+span) from its
	// binomial parent and forwards halves down the tree.
	vrank := (c.rank - root + n) % n
	toReal := func(v int) int { return (v + root) % n }
	// Find the number of blocks this vrank is responsible for: largest
	// power-of-two span below its subtree, clipped to n.
	recvFrom := -1
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			recvFrom = vrank &^ mask
			break
		}
		mask <<= 1
	}
	span := mask // blocks [vrank, vrank+span) clipped at n
	if vrank == 0 {
		span = 1
		for span < n {
			span <<= 1
		}
	}
	if recvFrom >= 0 {
		hi := vrank + span
		if hi > n {
			hi = n
		}
		if _, err := c.recvOn(ctx, toReal(recvFrom), tagBsag, buf[vrank*blk:hi*blk]); err != nil {
			return err
		}
	}
	child := span >> 1
	for child > 0 {
		cv := vrank + child
		if cv < n {
			hi := cv + child
			if hi > n {
				hi = n
			}
			if err := c.sendCopyOn(ctx, toReal(cv), tagBsag, buf[cv*blk:hi*blk]); err != nil {
				return err
			}
		}
		child >>= 1
	}

	// Allgather (ring) over the blocks, indexed by vrank.
	right := toReal((vrank + 1) % n)
	left := toReal((vrank - 1 + n) % n)
	for s := 0; s < n-1; s++ {
		sendBlk := (vrank - s + n) % n
		recvBlk := (vrank - s - 1 + n) % n
		if err := c.sendCopyOn(ctx, right, tagBsag+1+s, buf[sendBlk*blk:(sendBlk+1)*blk]); err != nil {
			return err
		}
		if _, err := c.recvOn(ctx, left, tagBsag+1+s, buf[recvBlk*blk:(recvBlk+1)*blk]); err != nil {
			return err
		}
	}
	return nil
}

// AllgatherRD is the recursive-doubling allgather for power-of-two groups:
// log2(n) rounds exchanging doubling block ranges. Falls back to the ring
// algorithm otherwise (same accounting: the call is still bracketed by its
// own span and MPI-time window, so the fallback does not masquerade as a
// plain Allgather).
func (c *Comm) AllgatherRD(send, recv []byte) error {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	defer c.span("allgather.rd")()
	c.p.beginInternal()
	defer c.p.endInternal()
	return c.herr(c.allgatherRD(send, recv))
}

func (c *Comm) allgatherRD(send, recv []byte) error {
	n := len(c.group)
	if n&(n-1) != 0 {
		return c.allgather(send, recv)
	}
	blk := len(send)
	if len(recv) != n*blk {
		return fmt.Errorf("mpi: allgather recv buffer has %d bytes, want %d", len(recv), n*blk)
	}
	ctx := c.collCtx()
	copy(recv[c.rank*blk:], send)
	// After round k, each rank holds the 2^(k+1) blocks of its aligned
	// group.
	for mask := 1; mask < n; mask <<= 1 {
		peer := c.rank ^ mask
		lo := (c.rank &^ (mask - 1)) * blk // aligned start of held range
		held := mask * blk
		start := (c.rank &^ (2*mask - 1)) * blk // range after the round
		peerLo := (peer &^ (mask - 1)) * blk
		if err := c.sendCopyOn(ctx, peer, tagAllgat+1<<10+mask, recv[lo:lo+held]); err != nil {
			return err
		}
		if _, err := c.recvOn(ctx, peer, tagAllgat+1<<10+mask, recv[peerLo:peerLo+held]); err != nil {
			return err
		}
		_ = start
	}
	return nil
}

// Gatherv collects variable-length blocks at root: every rank contributes
// send, root receives rank i's data at recv[displs[i]:displs[i]+counts[i]].
// counts and displs are significant at root only.
func (c *Comm) Gatherv(send []byte, recv []byte, counts, displs []int, root int) error {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	defer c.span("gatherv")()
	c.p.beginInternal()
	defer c.p.endInternal()
	return c.herr(c.gatherv(send, recv, counts, displs, root))
}

func (c *Comm) gatherv(send []byte, recv []byte, counts, displs []int, root int) error {
	n := len(c.group)
	if err := c.checkRank(root, "root"); err != nil {
		return err
	}
	ctx := c.collCtx()
	if c.rank != root {
		return c.sendCopyOn(ctx, root, tagGathv, send)
	}
	if len(counts) != n || len(displs) != n {
		return fmt.Errorf("mpi: gatherv needs %d counts and displs, got %d/%d", n, len(counts), len(displs))
	}
	for i := 0; i < n; i++ {
		if displs[i] < 0 || displs[i]+counts[i] > len(recv) {
			return fmt.Errorf("mpi: gatherv block %d [%d,%d) outside recv buffer of %d bytes", i, displs[i], displs[i]+counts[i], len(recv))
		}
	}
	copy(recv[displs[root]:displs[root]+counts[root]], send)
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		st, err := c.recvOn(ctx, i, tagGathv, recv[displs[i]:displs[i]+counts[i]])
		if err != nil {
			return err
		}
		if st.Size != counts[i] {
			return fmt.Errorf("mpi: gatherv rank %d sent %d bytes, root expected %d", i, st.Size, counts[i])
		}
	}
	return nil
}

// Scatterv distributes variable-length blocks from root: rank i receives
// send[displs[i]:displs[i]+counts[i]] into recv. counts and displs are
// significant at root only; recv must be counts[rank] bytes long.
func (c *Comm) Scatterv(send []byte, counts, displs []int, recv []byte, root int) error {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	defer c.span("scatterv")()
	c.p.beginInternal()
	defer c.p.endInternal()
	return c.herr(c.scatterv(send, counts, displs, recv, root))
}

func (c *Comm) scatterv(send []byte, counts, displs []int, recv []byte, root int) error {
	n := len(c.group)
	if err := c.checkRank(root, "root"); err != nil {
		return err
	}
	ctx := c.collCtx()
	if c.rank != root {
		_, err := c.recvOn(ctx, root, tagGathv, recv)
		return err
	}
	if len(counts) != n || len(displs) != n {
		return fmt.Errorf("mpi: scatterv needs %d counts and displs, got %d/%d", n, len(counts), len(displs))
	}
	for i := 0; i < n; i++ {
		if displs[i] < 0 || displs[i]+counts[i] > len(send) {
			return fmt.Errorf("mpi: scatterv block %d [%d,%d) outside send buffer of %d bytes", i, displs[i], displs[i]+counts[i], len(send))
		}
		if i == root {
			copy(recv, send[displs[i]:displs[i]+counts[i]])
			continue
		}
		if err := c.sendCopyOn(ctx, i, tagGathv, send[displs[i]:displs[i]+counts[i]]); err != nil {
			return err
		}
	}
	return nil
}
