// Package mpi is a message-passing runtime in the image of MPI, built for
// studying communication behaviour rather than raw speed: every rank is a
// goroutine, and time is virtual. Each process carries a logical clock in
// nanoseconds; sending and receiving advance it according to the netsim
// cost model, so the communication time of a program is a deterministic
// function of the process placement on the machine's topology — which is
// exactly what the paper's rank-reordering optimization manipulates.
//
// The API mirrors MPI: point-to-point Send/Recv with tags and wildcards,
// nonblocking Isend/Irecv with requests, communicators with Split/Dup,
// collective operations (decomposed internally into point-to-point
// messages, which is where the pml monitoring layer observes them), and
// one-sided windows with active-target fences.
package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mpimon/internal/commitagg"
	"mpimon/internal/faults"
	"mpimon/internal/netsim"
	"mpimon/internal/pml"
	"mpimon/internal/telemetry"
)

// Wildcards for Recv/Probe source and tag arguments.
const (
	AnySource = -1
	AnyTag    = -1
)

// World is one simulated MPI job: a machine, a placement of ranks onto
// cores, and the shared transport state. Build it with NewWorld, then call
// Run exactly once with the program every rank executes.
type World struct {
	mach      *netsim.Machine
	net       *netsim.Network
	size      int
	placement []int
	procs     []*Proc
	level     pml.Level
	tel       *telemetry.Telemetry

	// aggPol is the commit-on-threshold policy of the batched hot-path
	// accumulators (telemetry message counters, pml pending folds); see
	// WithCommitPolicy.
	aggPol commitagg.Policy

	// eng is the execution engine (engine.go); ev is non-nil while (and
	// after) Run executes on the event engine.
	eng Engine
	ev  *evScheduler

	// worldGroup is the identity comm-rank-to-world-rank mapping shared by
	// every rank's COMM_WORLD handle. Sharing one slice instead of building
	// one per rank matters at scale: 65536 ranks would otherwise hold
	// 65536 copies of a 512 KiB slice (32 GiB). Never mutated after
	// NewWorld.
	worldGroup []int

	ctxMu   sync.Mutex
	ctxSeq  int
	ctxKeys map[splitKey]int

	aborted atomic.Bool
	ran     bool

	// Fault-tolerance state (ulfm.go). ftOn is the single hot-path gate:
	// false until a fault plan is installed or a communicator is revoked,
	// and every fault check hides behind it.
	fplan       *faults.Plan
	inj         *faults.Injector
	ftOn        atomic.Bool
	failed      []atomic.Bool
	failedCount atomic.Int32
	revMu       sync.RWMutex
	revoked     map[int]bool
	revCount    atomic.Int32
	deadMu      sync.Mutex
	deadNodes   map[int]bool
	agreeMu     sync.Mutex
	agreeCond   sync.Cond
	agreements  map[agreeKey]*agreement
	shrinkMu    sync.Mutex
	shrinks     map[shrinkKey]*shrinkState
	ftm         *ftMetrics
}

// ErrAborted is returned by blocked operations when another rank of the
// world failed (returned an error or panicked), so the program cannot make
// progress; it prevents collective failures from deadlocking the run.
var ErrAborted = errors.New("mpi: world aborted because another rank failed")

type splitKey struct {
	parent int
	seq    int
	color  int
}

// Option configures a World at construction time.
type Option func(*World)

// WithPlacement maps rank i onto core placement[i]. The default is the
// packed ("standard") placement: rank i on core i.
func WithPlacement(placement []int) Option {
	return func(w *World) { w.placement = append([]int(nil), placement...) }
}

// WithMonitoringLevel sets the initial pml monitoring level of every rank
// (default pml.Distinct). Use pml.Disabled for overhead baselines.
func WithMonitoringLevel(l pml.Level) Option {
	return func(w *World) { w.level = l }
}

// WithCommitPolicy sets the commit-on-threshold policy of the world's
// batched accumulators: the per-rank telemetry message/byte counter
// cells and the pml monitor's pending session folds. The default is
// commitagg.Default(); commitagg.Eager commits every update immediately,
// reproducing the unbatched path bit for bit (the policy changes when
// data moves, never what the barriers — gathers, Suspends, scrapes —
// observe).
func WithCommitPolicy(p commitagg.Policy) Option {
	return func(w *World) { w.aggPol = p }
}

// CommitPolicy returns the world's normalized batching policy.
func (w *World) CommitPolicy() commitagg.Policy { return w.aggPol }

// NewWorld creates a world of np ranks on the given machine.
func NewWorld(mach *netsim.Machine, np int, opts ...Option) (*World, error) {
	if np <= 0 {
		return nil, fmt.Errorf("mpi: world size %d must be positive", np)
	}
	net, err := netsim.NewNetwork(mach)
	if err != nil {
		return nil, err
	}
	w := &World{mach: mach, net: net, size: np, level: pml.Distinct, aggPol: commitagg.Default(), ctxKeys: make(map[splitKey]int), ctxSeq: 1}
	for _, o := range opts {
		o(w)
	}
	if w.placement == nil {
		w.placement = make([]int, np)
		for i := range w.placement {
			w.placement[i] = i
		}
	}
	if err := validatePlacement(w.placement, np, mach.Topo.Leaves()); err != nil {
		return nil, err
	}
	if err := w.initFaults(); err != nil {
		return nil, err
	}
	w.pickEngine()
	w.worldGroup = make([]int, np)
	for i := range w.worldGroup {
		w.worldGroup[i] = i
	}
	w.procs = make([]*Proc, np)
	for r := 0; r < np; r++ {
		w.procs[r] = newProc(w, r)
	}
	if w.tel != nil {
		w.wireTelemetry()
	}
	return w, nil
}

func validatePlacement(placement []int, np, cores int) error {
	if len(placement) != np {
		return fmt.Errorf("mpi: placement has %d entries for %d ranks", len(placement), np)
	}
	seen := make(map[int]int, np)
	for r, c := range placement {
		if c < 0 || c >= cores {
			return fmt.Errorf("mpi: rank %d placed on core %d, machine has %d cores", r, c, cores)
		}
		if prev, dup := seen[c]; dup {
			return fmt.Errorf("mpi: ranks %d and %d both placed on core %d", prev, r, c)
		}
		seen[c] = r
	}
	return nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Machine returns the performance model.
func (w *World) Machine() *netsim.Machine { return w.mach }

// Network returns the shared transport state (NIC counters etc.).
func (w *World) Network() *netsim.Network { return w.net }

// Placement returns a copy of the rank-to-core mapping.
func (w *World) Placement() []int { return append([]int(nil), w.placement...) }

// Proc returns the process object of a rank (valid after NewWorld; mainly
// for post-run inspection of clocks and counters).
func (w *World) Proc(rank int) *Proc { return w.procs[rank] }

// MaxClock returns the largest per-rank virtual clock, i.e. the virtual
// makespan of the program run so far.
func (w *World) MaxClock() time.Duration {
	var m int64
	for _, p := range w.procs {
		if p.clock > m {
			m = p.clock
		}
	}
	return time.Duration(m)
}

// Run executes fn on every rank of the world — with that rank's COMM_WORLD
// — and waits for all of them, using the world's engine (goroutine-per-rank
// by default, discrete-event above EngineAutoThreshold ranks or with
// WithEngine). Panics inside fn are recovered and reported as errors. Run
// may be called only once per World.
func (w *World) Run(fn func(c *Comm) error) error {
	if w.ran {
		return errors.New("mpi: World.Run called twice")
	}
	w.ran = true
	return w.eng.run(w, fn)
}

// abort wakes every rank blocked in a receive so the world can unwind
// after a failure.
func (w *World) abort() {
	w.aborted.Store(true)
	for _, p := range w.procs {
		p.queue.cond.Broadcast()
	}
	w.agreeMu.Lock()
	w.agreeCond.Broadcast()
	w.agreeMu.Unlock()
}

// RunWithTimeout is Run with a watchdog: if the program has not completed
// after d of wall time (for instance because of a receive that can never
// match), it returns an error. The stuck goroutines are leaked; use this in
// tests only.
func (w *World) RunWithTimeout(d time.Duration, fn func(c *Comm) error) error {
	done := make(chan error, 1)
	go func() { done <- w.Run(fn) }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		return fmt.Errorf("mpi: run did not complete within %v (deadlock?)", d)
	}
}

func (w *World) worldComm(rank int) *Comm {
	// Every rank shares the world's identity group slice; Comm never
	// mutates its group after construction, so sharing is safe and keeps
	// COMM_WORLD O(1) memory per rank.
	return &Comm{p: w.procs[rank], ctx: 0, group: w.worldGroup, rank: rank}
}

// splitCtx returns the context id shared by all members of the communicator
// created by the seq-th Split of parent with the given color.
func (w *World) splitCtx(parent, seq, color int) int {
	w.ctxMu.Lock()
	defer w.ctxMu.Unlock()
	k := splitKey{parent: parent, seq: seq, color: color}
	if id, ok := w.ctxKeys[k]; ok {
		return id
	}
	id := w.ctxSeq
	w.ctxSeq++
	w.ctxKeys[k] = id
	return id
}

// Proc is one MPI process: a goroutine with a virtual clock, an incoming
// message queue and a monitoring component. All Proc methods must be called
// from the goroutine that owns the process (the one Run started), except
// the read-only accessors used after Run returns.
type Proc struct {
	world *World
	rank  int
	core  int
	node  int // topology node of core (fault-plan death checks)

	clock    int64 // virtual ns
	queue    msgQueue
	mon      *pml.Monitor
	internal int   // >0 while executing inside a collective implementation
	mpiTime  int64 // virtual ns spent in top-level MPI calls
	rng      *rand.Rand

	// dead and deathErr record this process's own materialized failure;
	// owned by the process goroutine.
	dead     bool
	deathErr error

	// tr and tm are nil unless the world was built WithTelemetry; every
	// telemetry hook guards on that, which is the whole disabled fast path.
	tr *telemetry.Rank
	tm *rankMetrics
}

func newProc(w *World, rank int) *Proc {
	p := &Proc{
		world: w,
		rank:  rank,
		core:  w.placement[rank],
		node:  w.mach.Topo.NodeOf(w.placement[rank]),
		mon:   pml.NewMonitor(w.size, w.level),
	}
	p.mon.SetCommitPolicy(w.aggPol)
	p.queue.init(p, &w.aborted)
	return p
}

// Rank returns the world rank.
func (p *Proc) Rank() int { return p.rank }

// Core returns the core (topology leaf) the process runs on.
func (p *Proc) Core() int { return p.core }

// World returns the enclosing world.
func (p *Proc) World() *World { return p.world }

// Monitor exposes the process's pml monitoring component.
func (p *Proc) Monitor() *pml.Monitor { return p.mon }

// Clock returns the process's virtual time.
func (p *Proc) Clock() time.Duration { return time.Duration(p.clock) }

// MPITime returns the virtual time this process has spent inside MPI calls
// (communication time), the quantity the paper's Fig. 7b reports.
func (p *Proc) MPITime() time.Duration { return time.Duration(p.mpiTime) }

// Rand returns the process's deterministic, rank-seeded random source. It
// is built on first use — a rand.Rand costs ~5 KiB, which no rank should
// pay in a 65536-rank world that never asks for randomness. Like all Proc
// methods it must be called from the owning goroutine.
func (p *Proc) Rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(int64(p.rank)*1_000_003 + 17))
	}
	return p.rng
}

// Compute advances the virtual clock by d, modelling computation.
func (p *Proc) Compute(d time.Duration) {
	if d < 0 {
		panic("mpi: negative compute time")
	}
	p.clock += int64(d)
}

// ComputeFlops advances the clock by the machine's time for the given
// number of floating-point operations.
func (p *Proc) ComputeFlops(flops float64) {
	p.Compute(p.world.mach.FlopTime(flops))
}

// Sleep is an alias of Compute for code that reads better that way (the
// paper's Fig. 2 workload sleeps between sends).
func (p *Proc) Sleep(d time.Duration) { p.Compute(d) }

// enterMPI starts accounting a top-level MPI call; leaveMPI(enterMPI())
// brackets every public communication method.
func (p *Proc) enterMPI() int64 {
	if p.internal == 0 {
		return p.clock
	}
	return -1
}

func (p *Proc) leaveMPI(t0 int64) {
	if t0 >= 0 {
		p.mpiTime += p.clock - t0
	}
}

// beginInternal marks the start of a library-internal region (collective
// decomposition): messages sent inside are monitored with class Coll.
func (p *Proc) beginInternal() { p.internal++ }

func (p *Proc) endInternal() {
	p.internal--
	if p.internal < 0 {
		panic("mpi: unbalanced internal region")
	}
}

// class returns the monitoring class of a message sent right now.
func (p *Proc) class() pml.Class {
	if p.internal > 0 {
		return pml.Coll
	}
	return pml.P2P
}
