package mpi

import (
	"fmt"
)

// Tag of the streamed gather (the previous file in the tag sequence,
// coll3.go, ends at 16 << 20).
const tagGast = 17 << 20 // GatherStream blocks

// probeOn is Probe on an explicit context: it blocks until a matching
// message is available, advances the clock to its arrival and returns its
// Status without consuming it.
func (c *Comm) probeOn(ctx, src, tag int) (Status, error) {
	if c.p.world.ftOn.Load() {
		if err := c.preRecv("probe"); err != nil {
			return Status{}, err
		}
	}
	saved := c.ctx
	c.ctx = ctx
	m, err := c.p.queue.peek(c, src, tag)
	c.ctx = saved
	if err != nil {
		return Status{}, err
	}
	if m.arrival > c.p.clock {
		c.p.clock = m.arrival
	}
	return Status{Source: m.src, Tag: m.tag, Size: m.size}, nil
}

// GatherStream collects every member's variable-length block at root,
// handing each block to deliver(src, block) in ascending source order
// instead of concatenating them: root's transient memory is bounded by the
// largest single block, not by the sum — the point of the chunked
// monitoring gathers on large worlds. The block slice is reused between
// deliveries; deliver must copy anything it keeps. deliver is called on
// root only (other ranks may pass nil) and an error from it aborts the
// collective on root.
func (c *Comm) GatherStream(send []byte, root int, deliver func(src int, block []byte) error) error {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	defer c.span("gatherstream")()
	c.p.beginInternal()
	defer c.p.endInternal()
	return c.herr(c.gatherStream(send, root, deliver))
}

func (c *Comm) gatherStream(send []byte, root int, deliver func(src int, block []byte) error) error {
	n := len(c.group)
	if err := c.checkRank(root, "root"); err != nil {
		return err
	}
	ctx := c.collCtx()
	if c.rank != root {
		return c.sendCopyOn(ctx, root, tagGast, send)
	}
	if deliver == nil {
		return fmt.Errorf("mpi: gatherstream root needs a deliver function")
	}
	var buf []byte
	for i := 0; i < n; i++ {
		if i == root {
			if err := deliver(i, send); err != nil {
				return err
			}
			continue
		}
		st, err := c.probeOn(ctx, i, tagGast)
		if err != nil {
			return err
		}
		if st.Size > len(buf) {
			buf = make([]byte, st.Size)
		}
		if _, err := c.recvOn(ctx, i, tagGast, buf[:st.Size]); err != nil {
			return err
		}
		if err := deliver(i, buf[:st.Size]); err != nil {
			return err
		}
	}
	return nil
}
