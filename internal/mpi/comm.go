package mpi

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Comm is a communicator handle as seen by one process: an ordered group of
// world ranks sharing a context id, plus this process's rank within it.
// Handles are per-process; the collective operations of the runtime must be
// called by every member, in matching order, exactly as in MPI. A handle
// must be used from its owning rank goroutine only (communicators are not
// goroutine-safe, matching MPI's threading rules for a communicator).
type Comm struct {
	p        *Proc
	ctx      int
	group    []int // comm rank -> world rank
	rank     int
	splitSeq int // number of Split/Dup calls issued through this handle

	// Fault-tolerance state (ulfm.go / errors.go).
	shrinkSeq int        // Shrink attempts issued through this handle
	agreeSeq  int        // Agree calls issued through this handle
	errh      ErrHandler // per-communicator error handler, may be nil
}

// Rank returns the calling process's rank in this communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of processes in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// Proc returns the calling process.
func (c *Comm) Proc() *Proc { return c.p }

// World returns the enclosing world.
func (c *Comm) World() *World { return c.p.world }

// Group returns a copy of the comm-rank-to-world-rank mapping.
func (c *Comm) Group() []int { return append([]int(nil), c.group...) }

// WorldRank translates a rank of this communicator to a world rank.
func (c *Comm) WorldRank(r int) int { return c.group[r] }

// Context returns the communicator's context id (unique per communicator
// within a world; COMM_WORLD is context 0).
func (c *Comm) Context() int { return c.ctx }

func (c *Comm) checkRank(r int, what string) error {
	if r < 0 || r >= len(c.group) {
		return fmt.Errorf("mpi: %s rank %d out of range [0,%d)", what, r, len(c.group))
	}
	return nil
}

// Split partitions the communicator: processes passing the same color end
// up in the same new communicator, ranked by (key, old rank). A negative
// color (MPI_UNDEFINED) yields a nil communicator for that caller. Split is
// collective over c.
func (c *Comm) Split(color, key int) (*Comm, error) {
	t0 := c.p.enterMPI()
	defer c.p.leaveMPI(t0)
	defer c.span("comm.split")()

	n := len(c.group)
	// Exchange (color, key) pairs; library-internal traffic.
	send := make([]byte, 16)
	binary.LittleEndian.PutUint64(send[0:8], uint64(int64(color)))
	binary.LittleEndian.PutUint64(send[8:16], uint64(int64(key)))
	all := make([]byte, 16*n)
	c.p.beginInternal()
	err := c.allgather(send, all)
	c.p.endInternal()
	if err != nil {
		return nil, c.herr(err)
	}

	type member struct{ color, key, rank int }
	members := make([]member, n)
	for i := 0; i < n; i++ {
		members[i] = member{
			color: int(int64(binary.LittleEndian.Uint64(all[16*i : 16*i+8]))),
			key:   int(int64(binary.LittleEndian.Uint64(all[16*i+8 : 16*i+16]))),
			rank:  i,
		}
	}
	seq := c.splitSeq
	c.splitSeq++
	if color < 0 {
		return nil, nil
	}
	var mine []member
	for _, m := range members {
		if m.color == color {
			mine = append(mine, m)
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].rank < mine[j].rank
	})
	group := make([]int, len(mine))
	myRank := -1
	for i, m := range mine {
		group[i] = c.group[m.rank]
		if m.rank == c.rank {
			myRank = i
		}
	}
	ctx := c.p.world.splitCtx(c.ctx, seq, color)
	return &Comm{p: c.p, ctx: ctx, group: group, rank: myRank, errh: c.errh}, nil
}

// Dup duplicates the communicator (same group, fresh context). Collective.
func (c *Comm) Dup() (*Comm, error) {
	return c.Split(0, c.rank)
}

// Translate returns, for each member of this communicator, its rank in
// other, or -1 when it is not a member. Purely local.
func (c *Comm) Translate(other *Comm) []int {
	worldToOther := make(map[int]int, len(other.group))
	for r, wr := range other.group {
		worldToOther[wr] = r
	}
	out := make([]int, len(c.group))
	for r, wr := range c.group {
		if o, ok := worldToOther[wr]; ok {
			out[r] = o
		} else {
			out[r] = -1
		}
	}
	return out
}
