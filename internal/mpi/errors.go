package mpi

import (
	"errors"
	"fmt"
)

// Sentinel error classes of the fault-tolerance layer, in the image of the
// ULFM chapter of the MPI standard. Operations return them wrapped in an
// *MPIError carrying the operation and the rank involved; match with
// errors.Is.
var (
	// ErrProcFailed reports that a process involved in the operation has
	// failed (MPI_ERR_PROC_FAILED): the destination of a send, the
	// source of a receive, a member of a collective, or the calling
	// process itself when its node died.
	ErrProcFailed = errors.New("mpi: process failed")
	// ErrRevoked reports that the communicator was revoked
	// (MPI_ERR_REVOKED): after Comm.Revoke, every pending and future
	// operation on the communicator fails with it, so all members learn
	// about a failure even if they never talk to the failed process.
	ErrRevoked = errors.New("mpi: communicator revoked")
	// ErrTimeout reports that an operation with a deadline (RecvTimeout,
	// the reorder mapping step) did not complete in time.
	ErrTimeout = errors.New("mpi: operation timed out")
	// ErrDeadlock reports that the discrete-event engine proved the
	// program stuck: every live rank is blocked and no event is pending,
	// so no wait can ever be satisfied. Only the event engine can detect
	// this (the goroutine engine relies on RunWithTimeout's watchdog); the
	// error is delivered to the lowest blocked rank, which aborts the
	// world.
	ErrDeadlock = errors.New("mpi: deadlock: every rank is blocked and no event is pending")
)

// MPIError is the typed error of the runtime's fault-tolerance layer: an
// error class (one of the sentinels above, or ErrAborted) plus where it
// happened. errors.Is matches the class through Unwrap.
type MPIError struct {
	// Kind is the error class sentinel.
	Kind error
	// Op names the operation ("send", "recv", "agree", ...).
	Op string
	// Rank is the world rank the error is about: the failed process for
	// ErrProcFailed, -1 when no specific rank is involved.
	Rank int
}

// Error formats the class, operation and rank.
func (e *MPIError) Error() string {
	if e.Rank >= 0 {
		return fmt.Sprintf("%v (op %s, world rank %d)", e.Kind, e.Op, e.Rank)
	}
	return fmt.Sprintf("%v (op %s)", e.Kind, e.Op)
}

// Unwrap exposes the class sentinel to errors.Is.
func (e *MPIError) Unwrap() error { return e.Kind }

func failedErr(op string, rank int) error {
	return &MPIError{Kind: ErrProcFailed, Op: op, Rank: rank}
}

func revokedErr(op string) error {
	return &MPIError{Kind: ErrRevoked, Op: op, Rank: -1}
}

func timeoutErr(op string) error {
	return &MPIError{Kind: ErrTimeout, Op: op, Rank: -1}
}

func deadlockErr(op string) error {
	return &MPIError{Kind: ErrDeadlock, Op: op, Rank: -1}
}

// ErrHandler is a per-communicator error handler: every error returned by
// an operation on the communicator passes through it, so an application can
// translate, log, or recover in one place (the MPI_Errhandler shape). It
// must return the error to surface (possibly the one given, possibly nil to
// swallow it).
type ErrHandler func(c *Comm, err error) error

// SetErrHandler installs the communicator's error handler (nil removes
// it). Handlers are inherited by communicators derived with Split, Dup and
// Shrink. Local operation.
func (c *Comm) SetErrHandler(h ErrHandler) { c.errh = h }

// herr routes an error through the communicator's handler, if any.
func (c *Comm) herr(err error) error {
	if err != nil && c.errh != nil {
		return c.errh(c, err)
	}
	return err
}
