package treematch

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"mpimon/internal/topology"
)

// randSparse builds a random sparse symmetric matrix of n processes with
// roughly degree nonzero peers per process.
func randSparse(n, degree int, seed int64) *Matrix {
	m := NewMatrix(n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		for d := 0; d < degree; d++ {
			j := rng.Intn(n)
			if j != i {
				m.Add(i, j, float64(rng.Intn(1000)+1))
			}
		}
	}
	m.Finish()
	return m
}

// testTopos returns topology/tree shapes covering balanced, multi-switch
// and restricted (uneven) cases for a 48-process instance.
func testTrees(t *testing.T) []*topology.Tree {
	t.Helper()
	balanced := topology.MustNew(4, 2, 6).FullTree()
	multi, err := topology.NewWithNodeDepth(2, 2, 2, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Restricted: 48 of the 64 leaves of a 4x4x4 machine, skipping every
	// fourth core — an uneven tree.
	topo := topology.MustNew(4, 4, 4)
	var keep []int
	for l := 0; l < topo.Leaves(); l++ {
		if l%4 != 3 {
			keep = append(keep, l)
		}
	}
	restricted, err := topo.Restrict(keep)
	if err != nil {
		t.Fatal(err)
	}
	return []*topology.Tree{balanced, multi.FullTree(), restricted}
}

// TestPartitionMatchesReference checks that on randomized sparse matrices
// the dense kernel reproduces the seed map-based algorithm exactly: the
// same placement, hence the same cost.
func TestPartitionMatchesReference(t *testing.T) {
	trees := testTrees(t)
	for seed := int64(1); seed <= 12; seed++ {
		for ti, tree := range trees {
			m := randSparse(48, 4, seed)
			got, err := MapTree(m, tree)
			if err != nil {
				t.Fatal(err)
			}
			want, err := refMapTree(m, tree)
			if err != nil {
				t.Fatal(err)
			}
			for p := range got {
				if got[p] != want[p] {
					t.Fatalf("seed %d tree %d: placement diverges from reference at process %d: got %v want %v",
						seed, ti, p, got, want)
				}
			}
		}
	}
}

// TestPartitionNeverWorseThanReference is the property the ISSUE asks for:
// on randomized sparse matrices the dense partition never yields a higher
// placement cost than the seed greedy implementation.
func TestPartitionNeverWorseThanReference(t *testing.T) {
	topo := topology.MustNew(2, 2, 2, 2)
	f := func(seed int64) bool {
		m := randSparse(16, 3, seed)
		tree := topo.FullTree()
		got, err := MapTree(m, tree)
		if err != nil {
			return false
		}
		want, err := refMapTree(m, tree)
		if err != nil {
			return false
		}
		return Cost(m, got, topo) <= Cost(m, want, topo)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionDeterministic maps the same matrix repeatedly (the parallel
// workers must not introduce schedule-dependent results).
func TestPartitionDeterministic(t *testing.T) {
	topo := topology.MustNew(8, 2, 4)
	m := randSparse(64, 5, 42)
	first, err := MapTree(m, topo.FullTree())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := MapTree(m, topo.FullTree())
		if err != nil {
			t.Fatal(err)
		}
		for p := range first {
			if again[p] != first[p] {
				t.Fatalf("run %d: nondeterministic placement at process %d", i, p)
			}
		}
	}
}

// TestPartitionRespectsCaps drives the kernel directly: every part must
// have exactly its requested capacity and the parts must partition procs.
func TestPartitionRespectsCaps(t *testing.T) {
	m := randSparse(31, 4, 7)
	procs := make([]int, 31)
	for i := range procs {
		procs[i] = i
	}
	for _, caps := range [][]int{
		{10, 21},
		{1, 30},
		{7, 8, 16},
		{1, 1, 1, 28},
		{5, 5, 5, 5, 5, 6},
	} {
		ws := newWorkspace(31)
		parts := ws.partition(m, procs, caps)
		seen := make(map[int]bool)
		for i, part := range parts {
			if len(part) != caps[i] {
				t.Fatalf("caps %v: part %d has %d members, want %d", caps, i, len(part), caps[i])
			}
			for _, p := range part {
				if seen[p] {
					t.Fatalf("caps %v: process %d in two parts", caps, p)
				}
				seen[p] = true
			}
		}
		if len(seen) != len(procs) {
			t.Fatalf("caps %v: %d processes assigned, want %d", caps, len(seen), len(procs))
		}
		// The workspace must come back clean for reuse.
		for i := range ws.local {
			if ws.local[i] != -1 {
				t.Fatalf("caps %v: workspace local[%d] not reset", caps, i)
			}
		}
		for i := range ws.rowW {
			if ws.rowW[i] != 0 || ws.scratch[i] != 0 || ws.gain[i] != 0 {
				t.Fatalf("caps %v: workspace scratch row %d not reset", caps, i)
			}
		}
	}
}

// TestRefineDegradeHook shrinks the budget so refinement must fall back to
// the capped pass, and checks the degradation is surfaced with plausible
// numbers — and that the capped refinement still never places worse than
// the (budget-skipped) reference.
func TestRefineDegradeHook(t *testing.T) {
	oldBudget := refineBudget
	refineBudget = 64
	var mu sync.Mutex
	var events []RefineDegrade
	OnRefineDegrade = func(d RefineDegrade) {
		mu.Lock()
		events = append(events, d)
		mu.Unlock()
	}
	defer func() {
		refineBudget = oldBudget
		OnRefineDegrade = nil
	}()

	topo := topology.MustNew(4, 2, 6)
	m := randSparse(48, 4, 5)
	got, err := MapTree(m, topo.FullTree())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no degrade event for a 48-process partition under a 64-swap budget")
	}
	for _, d := range events {
		if d.Work <= d.Budget {
			t.Fatalf("degrade event with work %d within budget %d", d.Work, d.Budget)
		}
		if d.Procs <= 0 || d.Parts <= 1 {
			t.Fatalf("implausible degrade event %+v", d)
		}
	}
	// Reference under the same tiny budget skips refinement entirely; the
	// capped pass must not be worse.
	want, err := refMapTree(m, topo.FullTree())
	if err != nil {
		t.Fatal(err)
	}
	if gc, wc := Cost(m, got, topo), Cost(m, want, topo); gc > wc+1e-9 {
		t.Fatalf("capped refinement cost %v worse than unrefined reference %v", gc, wc)
	}
}

// TestMapTreeParallelLargeMatchesReference exercises the worker pool (the
// subproblems exceed parallelThreshold) and checks exact equivalence.
func TestMapTreeParallelLargeMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	topo := topology.MustNew(32, 2, 12)
	m := randSparse(768, 6, 11)
	got, err := MapTree(m, topo.FullTree())
	if err != nil {
		t.Fatal(err)
	}
	want, err := refMapTree(m, topo.FullTree())
	if err != nil {
		t.Fatal(err)
	}
	for p := range got {
		if got[p] != want[p] {
			t.Fatalf("parallel placement diverges from reference at process %d", p)
		}
	}
}
