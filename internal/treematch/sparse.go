package treematch

import (
	"fmt"

	"mpimon/internal/sparsemat"
)

// addSparsePairs folds the symmetric byte affinities of the sparse matrix
// into m, visiting every unordered pair exactly once. The affinity of
// (i, j) is float64(bytes i→j) + float64(bytes j→i), added only when
// positive — the same arithmetic, in the same shape, as FromBytesMatrix,
// so the resulting affinity matrix is bit-identical to the dense path.
func addSparsePairs(m *Matrix, sm *sparsemat.Matrix) error {
	n := sm.N
	if len(sm.Rows) != n {
		return fmt.Errorf("treematch: sparse matrix has %d rows for size %d", len(sm.Rows), n)
	}
	for i := 0; i < n; i++ {
		r := sm.Rows[i]
		if err := r.Validate(n); err != nil {
			return err
		}
		for k, d := range r.Dst {
			j := int(d)
			if j == i {
				continue
			}
			if j > i {
				_, bji := sm.At(j, i)
				if w := float64(r.Byt[k]) + float64(bji); w > 0 {
					m.Add(i, j, w)
				}
				continue
			}
			// j < i: the pair was handled by row j's pass above unless row j
			// has no entry for i at all (an entry with zero bytes still
			// claims the pair there).
			if !sm.Has(j, i) {
				if w := float64(r.Byt[k]); w > 0 {
					m.Add(j, i, w)
				}
			}
		}
	}
	return nil
}

// FromSparseRows builds the affinity matrix from a sparse communication
// matrix as gathered by AllgatherSparse/RootgatherSparse, in O(nnz) time
// and memory: the dense n² bytes matrix is never materialized. The result
// is bit-identical to FromBytesMatrix over the densified matrix.
func FromSparseRows(sm *sparsemat.Matrix) (*Matrix, error) {
	m := NewMatrix(sm.N)
	if err := addSparsePairs(m, sm); err != nil {
		return nil, err
	}
	m.Finish()
	return m, nil
}

// FromSparseRowsPadded is FromSparseRows over a matrix of total ≥ sm.N
// processes, the extras having no affinity — the zero-padding the elastic
// reconfiguration uses to let TreeMatch pick which cores the real ranks
// occupy.
func FromSparseRowsPadded(sm *sparsemat.Matrix, total int) (*Matrix, error) {
	if total < sm.N {
		return nil, fmt.Errorf("treematch: padding %d processes down to %d", sm.N, total)
	}
	m := NewMatrix(total)
	if err := addSparsePairs(m, sm); err != nil {
		return nil, err
	}
	m.Finish()
	return m, nil
}
