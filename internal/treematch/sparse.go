package treematch

import (
	"mpimon/internal/sparsemat"
)

// FromSparseRows builds the affinity matrix from a sparse communication
// matrix as gathered by AllgatherSparse/RootgatherSparse, in O(nnz) time
// and memory: the dense n² bytes matrix is never materialized. The result
// is bit-identical to FromBytesMatrix over the densified matrix.
//
// Deprecated: use FromView — *sparsemat.Matrix satisfies MatrixView
// directly, and this wrapper is exactly FromView(sm).
func FromSparseRows(sm *sparsemat.Matrix) (*Matrix, error) {
	return FromView(sm)
}

// FromSparseRowsPadded is FromSparseRows over a matrix of total ≥ sm.N
// processes, the extras having no affinity — the zero-padding the elastic
// reconfiguration uses to let TreeMatch pick which cores the real ranks
// occupy.
//
// Deprecated: use FromViewPadded, of which this is a thin wrapper.
func FromSparseRowsPadded(sm *sparsemat.Matrix, total int) (*Matrix, error) {
	return FromViewPadded(sm, total)
}
