package treematch

import (
	"fmt"
	"math/rand"

	"mpimon/internal/topology"
)

// PlacementPacked returns the "standard" placement the paper uses when no
// binding is requested: rank i on core i, filling nodes one after another.
func PlacementPacked(np int) []int {
	p := make([]int, np)
	for i := range p {
		p[i] = i
	}
	return p
}

// PlacementRoundRobin spreads ranks across nodes: rank i runs on node
// i mod numNodes, on that node's next free core. This is the paper's
// round-robin (RR) initial mapping.
func PlacementRoundRobin(np int, topo *topology.Topology) ([]int, error) {
	nodes := topo.NumNodes()
	per := topo.LeavesPerNode()
	if np > topo.Leaves() {
		return nil, fmt.Errorf("treematch: %d ranks exceed %d cores", np, topo.Leaves())
	}
	p := make([]int, np)
	for i := 0; i < np; i++ {
		node := i % nodes
		slot := i / nodes
		if slot >= per {
			return nil, fmt.Errorf("treematch: round-robin overflow on node %d", node)
		}
		p[i] = node*per + slot
	}
	return p, nil
}

// PlacementRandom binds ranks to distinct random cores among the first
// usable cores (the paper's random initial mapping). The set of candidate
// cores is the nodes' worth of cores needed to host np ranks, i.e. the
// same nodes the other placements would use.
func PlacementRandom(np int, topo *topology.Topology, seed int64) ([]int, error) {
	per := topo.LeavesPerNode()
	nodesNeeded := (np + per - 1) / per
	cores := nodesNeeded * per
	if cores > topo.Leaves() {
		return nil, fmt.Errorf("treematch: %d ranks need %d cores, machine has %d", np, cores, topo.Leaves())
	}
	perm := rand.New(rand.NewSource(seed)).Perm(cores)
	return perm[:np], nil
}
