package treematch

import (
	"fmt"

	"mpimon/internal/topology"
)

// warmBudget caps the candidate pairs one RefinePlacement pass examines, so
// a warm refinement on a huge world degrades to fewer passes instead of
// stalling the control loop (the full kernel has its own refineBudget).
var warmBudget = 1 << 24

// RefinePlacement is the incremental TreeMatch used by the online
// re-reordering loop: instead of recomputing a placement from scratch, it
// warm-starts from prev — the placement the communicator already runs
// under — and hill-climbs by swapping the cores of process pairs while a
// swap lowers Cost under the (current) affinity matrix m. The returned
// placement uses exactly the cores of prev (a permutation of it), costs no
// more than prev, and equals prev when no improving swap exists — which is
// what makes "no remap needed" fall out naturally when the matrix has not
// drifted. Deterministic: fixed scan order, first-improvement acceptance,
// at most maxPasses sweeps (≤ 0 means one).
func RefinePlacement(m *Matrix, topo *topology.Topology, prev []int, maxPasses int) ([]int, error) {
	n := m.N()
	if len(prev) != n {
		return nil, fmt.Errorf("treematch: placement of %d cores for %d processes", len(prev), n)
	}
	coreOf := append([]int(nil), prev...)
	if maxPasses <= 0 {
		maxPasses = 1
	}
	m.Finish()
	const eps = 1e-12
	budget := warmBudget
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for a := 0; a < n; a++ {
			if len(m.Row(a)) == 0 {
				continue
			}
			for b := a + 1; b < n; b++ {
				if budget--; budget < 0 {
					return coreOf, nil
				}
				if swapDelta(m, topo, coreOf, a, b) < -eps {
					coreOf[a], coreOf[b] = coreOf[b], coreOf[a]
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return coreOf, nil
}

// swapDelta is the Cost change of exchanging the cores of processes a and b
// (negative = improvement), in O(deg(a)+deg(b)): only edges incident to a
// or b change length, and the a–b edge itself keeps its distance.
func swapDelta(m *Matrix, topo *topology.Topology, coreOf []int, a, b int) float64 {
	ca, cb := coreOf[a], coreOf[b]
	var delta float64
	for _, e := range m.Row(a) {
		if e.Col == b {
			continue
		}
		cx := coreOf[e.Col]
		delta += e.W * float64(topo.Distance(cb, cx)-topo.Distance(ca, cx))
	}
	for _, e := range m.Row(b) {
		if e.Col == a {
			continue
		}
		cx := coreOf[e.Col]
		delta += e.W * float64(topo.Distance(ca, cx)-topo.Distance(cb, cx))
	}
	return delta
}
