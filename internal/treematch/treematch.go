package treematch

import (
	"fmt"
	"math"
	"sort"

	"mpimon/internal/topology"
)

// MapTree places the m.N() processes of the affinity matrix onto the leaves
// of the topology tree, returning coreOf[process] = leaf id. The number of
// processes must equal the number of leaves; to place fewer processes than
// the machine has cores, first prune the topology with Topology.Restrict to
// the occupied cores.
//
// The algorithm is recursive top-down partitioning: at each inner node the
// processes are split into one part per child, sized by the child's leaf
// capacity, greedily maximizing intra-part affinity. It handles uneven
// (restricted) trees, which the classic bottom-up grouping does not.
// Sibling subtrees are mapped concurrently by a bounded worker pool; the
// result is deterministic regardless of scheduling (the dense partitioning
// kernel lives in partition.go).
func MapTree(m *Matrix, root *topology.Tree) ([]int, error) {
	if m.N() != root.Cap {
		return nil, fmt.Errorf("treematch: %d processes for a tree of %d leaves (restrict the topology first)", m.N(), root.Cap)
	}
	m.Finish()
	out := make([]int, m.N())
	procs := make([]int, m.N())
	for i := range procs {
		procs[i] = i
	}
	newMapper(m, out).run(root, procs)
	return out, nil
}

// treeNode is the tree type the partitioning kernel recurses over.
type treeNode = topology.Tree

// MapBalanced is the classic bottom-up TreeMatch on a balanced topology:
// processes are grouped by the deepest level's arity maximizing intra-group
// affinity, groups become virtual processes with aggregated affinities, and
// the procedure repeats up to the root. The matrix may have fewer processes
// than the topology has leaves; missing slots are padded with zero-affinity
// dummies (which can land on any core — use MapTree with a restricted tree
// when specific cores must be avoided). Returns coreOf[process] = leaf.
func MapBalanced(m *Matrix, topo *topology.Topology) ([]int, error) {
	n := m.N()
	leaves := topo.Leaves()
	if n > leaves {
		return nil, fmt.Errorf("treematch: %d processes exceed the %d leaves of the topology", n, leaves)
	}
	m.Finish()

	// Current objects: each is a list of original processes (dummies are
	// absent); aff is the aggregated affinity between objects, padded
	// with zero-affinity dummy rows up to the leaf count.
	objs := make([][]int, leaves)
	for i := 0; i < leaves; i++ {
		if i < n {
			objs[i] = []int{i}
		} else {
			objs[i] = nil // dummy
		}
	}
	aff := NewMatrix(leaves)
	for i := 0; i < n; i++ {
		for _, e := range m.Row(i) {
			if e.Col > i {
				aff.Add(i, e.Col, e.W)
			}
		}
	}
	aff.Finish()
	arities := topo.Arities()

	for depth := len(arities) - 1; depth >= 1; depth-- {
		a := arities[depth]
		groups := groupK(aff, len(objs), a)
		newObjs := make([][]int, len(groups))
		next := NewMatrix(len(groups))
		// Aggregate affinities between groups.
		groupOf := make([]int, len(objs))
		for g, members := range groups {
			for _, o := range members {
				groupOf[o] = g
			}
		}
		for i := 0; i < len(objs); i++ {
			for _, e := range aff.Row(i) {
				if e.Col > i && groupOf[i] != groupOf[e.Col] {
					next.Add(groupOf[i], groupOf[e.Col], e.W)
				}
			}
		}
		for g, members := range groups {
			var merged []int
			for _, o := range members {
				merged = append(merged, objs[o]...)
			}
			newObjs[g] = merged
		}
		objs = newObjs
		aff = next
		aff.Finish()
	}

	// Flatten: objs are ordered left-to-right under the root; each object
	// occupies a block of leaves. Recover the per-process leaf from the
	// order processes were merged in (grouping preserved child order).
	coreOf := make([]int, n)
	leaf := 0
	blk := leaves
	if len(objs) > 0 {
		blk = leaves / len(objs)
	}
	for g, members := range objs {
		leaf = g * blk
		for _, p := range members {
			coreOf[p] = leaf
			leaf++
		}
	}
	return coreOf, nil
}

// groupK partitions object ids 0..n-1 into n/k groups of k, greedily: each
// group is seeded with the ungrouped object of largest remaining affinity
// and grown by the ungrouped object with the highest affinity to the group.
func groupK(m *Matrix, n, k int) [][]int {
	if n%k != 0 {
		panic(fmt.Sprintf("treematch: cannot group %d objects by %d", n, k))
	}
	ung := make([]bool, n)
	for i := range ung {
		ung[i] = true
	}
	total := make([]float64, n)
	for i := 0; i < n; i++ {
		for _, e := range m.Row(i) {
			total[i] += e.W
		}
	}
	var groups [][]int
	remaining := n
	gain := make([]float64, n)
	for remaining > 0 {
		// Seed: ungrouped object with max total remaining affinity.
		seed := -1
		for i := 0; i < n; i++ {
			if ung[i] && (seed == -1 || total[i] > total[seed]) {
				seed = i
			}
		}
		group := []int{seed}
		ung[seed] = false
		remaining--
		for i := range gain {
			gain[i] = 0
		}
		for _, e := range m.Row(seed) {
			if ung[e.Col] {
				gain[e.Col] += e.W
			}
		}
		for len(group) < k {
			best := -1
			for i := 0; i < n; i++ {
				if !ung[i] {
					continue
				}
				if best == -1 || gain[i] > gain[best] ||
					(gain[i] == gain[best] && total[i] > total[best]) {
					best = i
				}
			}
			group = append(group, best)
			ung[best] = false
			remaining--
			for _, e := range m.Row(best) {
				if ung[e.Col] {
					gain[e.Col] += e.W
				}
			}
		}
		// Claimed objects no longer count in peers' remaining totals.
		for _, g := range group {
			for _, e := range m.Row(g) {
				if ung[e.Col] {
					total[e.Col] -= e.W
				}
			}
		}
		sort.Ints(group)
		groups = append(groups, group)
	}
	return groups
}

// Cost evaluates a placement: the sum over communicating pairs of
// affinity times topology distance between their cores. Lower is better;
// it is the objective the paper's reordering minimizes.
func Cost(m *Matrix, coreOf []int, topo *topology.Topology) float64 {
	m.Finish()
	var s float64
	for i := 0; i < m.N(); i++ {
		for _, e := range m.Row(i) {
			if e.Col > i {
				s += e.W * float64(topo.Distance(coreOf[i], coreOf[e.Col]))
			}
		}
	}
	return s
}

// OptimalMap finds the provably optimal placement by exhaustive search —
// usable only for tiny instances (it explores n! permutations, capped at
// n = 10). It is the oracle the greedy algorithms are tested against.
func OptimalMap(m *Matrix, topo *topology.Topology) ([]int, float64, error) {
	n := m.N()
	if n > 10 {
		return nil, 0, fmt.Errorf("treematch: exhaustive search infeasible for %d processes (max 10)", n)
	}
	if n > topo.Leaves() {
		return nil, 0, fmt.Errorf("treematch: %d processes exceed %d leaves", n, topo.Leaves())
	}
	m.Finish()
	// Search over placements onto the first n... no: onto any subset of
	// leaves would explode; by symmetry of balanced trees, mapping onto
	// any distinct leaves is covered by permutations over all leaves when
	// n == leaves; for n < leaves, search assignments into all leaves
	// with backtracking.
	best := make([]int, n)
	cur := make([]int, n)
	used := make([]bool, topo.Leaves())
	bestCost := math.Inf(1)
	var rec func(i int, cost float64)
	rec = func(i int, cost float64) {
		if cost >= bestCost {
			return
		}
		if i == n {
			bestCost = cost
			copy(best, cur)
			return
		}
		for leaf := 0; leaf < topo.Leaves(); leaf++ {
			if used[leaf] {
				continue
			}
			add := 0.0
			for _, e := range m.Row(i) {
				if e.Col < i {
					add += e.W * float64(topo.Distance(leaf, cur[e.Col]))
				}
			}
			used[leaf] = true
			cur[i] = leaf
			rec(i+1, cost+add)
			used[leaf] = false
		}
	}
	rec(0, 0)
	return best, bestCost, nil
}
