// Package treematch implements the TreeMatch topology-aware process
// placement algorithm (Jeannot, Mercier, Tessier, IEEE TPDS 2014) used by
// the paper's rank-reordering optimization: given the affinity between
// processes (a communication matrix, typically the bytes matrix gathered by
// the monitoring library) and the tree topology of the machine, it computes
// a mapping of processes onto cores that keeps heavily-communicating
// processes close.
//
// Two algorithm variants are provided. MapTree is a top-down recursive
// partitioning that handles arbitrary (including pruned/uneven) topology
// trees and is the default. MapBalanced is the classic bottom-up k-ary
// grouping for balanced trees, kept for comparison. The package also ships
// the baseline placements the paper compares against (packed/"standard",
// round-robin, random) and a placement cost evaluator.
package treematch

import (
	"fmt"
	"sort"

	"mpimon/internal/sparsemat"
)

// Entry is one off-diagonal affinity of a sparse matrix row.
type Entry struct {
	Col int
	W   float64
}

// Matrix is a symmetric process-affinity matrix stored sparsely: rows[i]
// holds the nonzero affinities of process i, sorted by column. Build one
// with NewMatrix/Add/Finish or FromBytesMatrix.
type Matrix struct {
	n        int
	rows     [][]Entry
	finished bool
	// nonneg records that no entry is negative (true for byte-count
	// matrices); the refinement kernel uses it to skip part pairs with no
	// cut affinity, which is lossless only without negative weights.
	nonneg bool
}

// NewMatrix creates an empty n-process affinity matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{n: n, rows: make([][]Entry, n)}
}

// N returns the number of processes.
func (m *Matrix) N() int { return m.n }

// Add accumulates symmetric affinity w between processes i and j.
// Self-affinities (i == j) are ignored: they cannot influence placement.
func (m *Matrix) Add(i, j int, w float64) {
	if i == j || w == 0 {
		return
	}
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		panic(fmt.Sprintf("treematch: affinity (%d,%d) out of range for %d processes", i, j, m.n))
	}
	m.rows[i] = append(m.rows[i], Entry{Col: j, W: w})
	m.rows[j] = append(m.rows[j], Entry{Col: i, W: w})
	m.finished = false
}

// Finish sorts and merges duplicate entries; Map* call it implicitly.
func (m *Matrix) Finish() {
	if m.finished {
		return
	}
	m.nonneg = true
	for i := range m.rows {
		r := m.rows[i]
		sort.Slice(r, func(a, b int) bool { return r[a].Col < r[b].Col })
		out := r[:0]
		for _, e := range r {
			if len(out) > 0 && out[len(out)-1].Col == e.Col {
				out[len(out)-1].W += e.W
			} else {
				out = append(out, e)
			}
		}
		for _, e := range out {
			if e.W < 0 {
				m.nonneg = false
				break
			}
		}
		m.rows[i] = out
	}
	m.finished = true
}

// Row returns the (finished) sparse row of process i. The slice is shared;
// callers must not modify it.
func (m *Matrix) Row(i int) []Entry {
	m.Finish()
	return m.rows[i]
}

// Affinity returns the symmetric affinity between i and j.
func (m *Matrix) Affinity(i, j int) float64 {
	m.Finish()
	r := m.rows[i]
	k := sort.Search(len(r), func(k int) bool { return r[k].Col >= j })
	if k < len(r) && r[k].Col == j {
		return r[k].W
	}
	return 0
}

// Degree returns the number of distinct peers of process i.
func (m *Matrix) Degree(i int) int {
	m.Finish()
	return len(m.rows[i])
}

// TotalWeight returns the sum of all symmetric affinities (each pair once).
func (m *Matrix) TotalWeight() float64 {
	m.Finish()
	var s float64
	for _, r := range m.rows {
		for _, e := range r {
			s += e.W
		}
	}
	return s / 2
}

// FromBytesMatrix builds the affinity matrix from a row-major n-by-n
// communication matrix as produced by the monitoring library's
// AllgatherData/RootgatherData: the affinity between i and j is
// mat[i*n+j] + mat[j*n+i] (bytes exchanged in both directions).
//
// Deprecated: use FromView(sparsemat.DenseView(mat, n)), of which this is
// a thin wrapper producing a bit-identical matrix.
func FromBytesMatrix(mat []uint64, n int) (*Matrix, error) {
	if n < 0 || len(mat) != n*n {
		return nil, fmt.Errorf("treematch: matrix of %d entries is not %d x %d", len(mat), n, n)
	}
	return FromView(sparsemat.DenseView(mat, n))
}

// Dense returns the symmetric matrix densely (tests and small inputs only).
func (m *Matrix) Dense() [][]float64 {
	m.Finish()
	out := make([][]float64, m.n)
	for i := range out {
		out[i] = make([]float64, m.n)
		for _, e := range m.rows[i] {
			out[i][e.Col] = e.W
		}
	}
	return out
}
