package treematch

import (
	"math/rand"
	"sort"
	"testing"

	"mpimon/internal/topology"
)

func TestRefinePlacementFixesPairPattern(t *testing.T) {
	// Pairs (0,4),(1,5),(2,6),(3,7) heavy on a 2x4 machine with the
	// packed placement 0-3 / 4-7: every pair is cross-node, and single
	// swaps can colocate all of them.
	topo := topology.MustNew(2, 4)
	m := NewMatrix(8)
	for i := 0; i < 4; i++ {
		m.Add(i, i+4, 1000)
	}
	prev := []int{0, 1, 2, 3, 4, 5, 6, 7}
	got, err := RefinePlacement(m, topo, prev, 8)
	if err != nil {
		t.Fatal(err)
	}
	before, after := Cost(m, prev, topo), Cost(m, got, topo)
	if after >= before {
		t.Fatalf("refinement did not improve: %v -> %v", before, after)
	}
	for i := 0; i < 4; i++ {
		if topo.NodeOf(got[i]) != topo.NodeOf(got[i+4]) {
			t.Fatalf("pair (%d,%d) still split: placement %v", i, i+4, got)
		}
	}
}

func TestRefinePlacementIdentityWhenStable(t *testing.T) {
	// Pairs already colocated: no swap improves, so the previous
	// placement comes back verbatim — the controller's "no remap needed".
	topo := topology.MustNew(2, 4)
	m := NewMatrix(8)
	m.Add(0, 1, 500)
	m.Add(2, 3, 500)
	m.Add(4, 5, 500)
	m.Add(6, 7, 500)
	prev := []int{0, 1, 2, 3, 4, 5, 6, 7}
	got, err := RefinePlacement(m, topo, prev, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prev {
		if got[i] != prev[i] {
			t.Fatalf("stable placement changed: %v -> %v", prev, got)
		}
	}
}

func TestRefinePlacementNeverWorsensRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	topo := topology.MustNew(2, 2, 2)
	for trial := 0; trial < 25; trial++ {
		n := 8
		m := NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) > 0 {
					m.Add(i, j, float64(rng.Intn(1000)))
				}
			}
		}
		prev := rng.Perm(n)
		got, err := RefinePlacement(m, topo, prev, 3)
		if err != nil {
			t.Fatal(err)
		}
		if c0, c1 := Cost(m, prev, topo), Cost(m, got, topo); c1 > c0 {
			t.Fatalf("trial %d: refinement worsened cost %v -> %v", trial, c0, c1)
		}
		// The refined placement must use exactly the previous cores.
		a, b := append([]int(nil), prev...), append([]int(nil), got...)
		sort.Ints(a)
		sort.Ints(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: not a permutation of prev: %v vs %v", trial, prev, got)
			}
		}
	}
}

func TestRefinePlacementLengthMismatch(t *testing.T) {
	topo := topology.MustNew(2, 2)
	m := NewMatrix(4)
	if _, err := RefinePlacement(m, topo, []int{0, 1}, 1); err == nil {
		t.Fatal("short placement should error")
	}
}

func TestRefinePlacementBudgetExhaustion(t *testing.T) {
	old := warmBudget
	warmBudget = 3
	defer func() { warmBudget = old }()
	topo := topology.MustNew(2, 4)
	m := NewMatrix(8)
	for i := 0; i < 4; i++ {
		m.Add(i, i+4, 1000)
	}
	prev := []int{0, 1, 2, 3, 4, 5, 6, 7}
	got, err := RefinePlacement(m, topo, prev, 100)
	if err != nil {
		t.Fatal(err)
	}
	// With only 3 candidate pairs examined the result must still be valid
	// and no worse, just possibly unimproved.
	if c0, c1 := Cost(m, prev, topo), Cost(m, got, topo); c1 > c0 {
		t.Fatalf("budget-capped refinement worsened cost %v -> %v", c0, c1)
	}
}
