package treematch

// The seed (pre-rewrite) map-based partitioning algorithm, kept verbatim as
// a test-only reference: the dense kernel in partition.go must never place
// worse than this within the refinement budget (and, by construction, it
// reproduces the reference's greedy and swap selection exactly, so the
// equality tests in partition_test.go hold bit-for-bit).

import (
	"fmt"
	"sort"

	"mpimon/internal/topology"
)

func refMapTree(m *Matrix, root *topology.Tree) ([]int, error) {
	if m.N() != root.Cap {
		return nil, fmt.Errorf("treematch: %d processes for a tree of %d leaves", m.N(), root.Cap)
	}
	m.Finish()
	out := make([]int, m.N())
	procs := make([]int, m.N())
	for i := range procs {
		procs[i] = i
	}
	refAssign(m, root, procs, out)
	return out, nil
}

func refAssign(m *Matrix, node *topology.Tree, procs []int, out []int) {
	if node.Children == nil {
		out[procs[0]] = node.Leaf
		return
	}
	caps := make([]int, len(node.Children))
	for i, c := range node.Children {
		caps[i] = c.Cap
	}
	parts := refPartition(m, procs, caps)
	for i, c := range node.Children {
		refAssign(m, c, parts[i], out)
	}
}

func refPartition(m *Matrix, procs []int, caps []int) [][]int {
	k := len(caps)
	parts := make([][]int, k)
	if k == 1 {
		parts[0] = procs
		return parts
	}

	inSet := make(map[int]bool, len(procs))
	for _, p := range procs {
		inSet[p] = true
	}
	unassigned := make(map[int]bool, len(procs))
	for _, p := range procs {
		unassigned[p] = true
	}
	total := make(map[int]float64, len(procs))
	for _, p := range procs {
		var s float64
		for _, e := range m.Row(p) {
			if inSet[e.Col] {
				s += e.W
			}
		}
		total[p] = s
	}

	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if caps[order[a]] != caps[order[b]] {
			return caps[order[a]] > caps[order[b]]
		}
		return order[a] < order[b]
	})

	claim := func(p int) {
		delete(unassigned, p)
		for _, e := range m.Row(p) {
			if unassigned[e.Col] {
				total[e.Col] -= e.W
			}
		}
	}

	for _, pi := range order {
		want := caps[pi]
		part := make([]int, 0, want)
		gain := make(map[int]float64)

		for len(part) < want {
			best, found := -1, false
			var bestScore, bestGain float64
			for _, p := range procs {
				if !unassigned[p] {
					continue
				}
				g := gain[p]
				score := g - (total[p] - g)
				if !found || score > bestScore || (score == bestScore && g > bestGain) ||
					(score == bestScore && g == bestGain && p < best) {
					best, bestScore, bestGain, found = p, score, g, true
				}
			}
			claim(best)
			part = append(part, best)
			for _, e := range m.Row(best) {
				if unassigned[e.Col] {
					gain[e.Col] += e.W
				}
			}
		}
		parts[pi] = part
	}

	refRefineSwaps(m, parts)
	for _, part := range parts {
		sort.Ints(part)
	}
	return parts
}

func refRefineSwaps(m *Matrix, parts [][]int) {
	work := 0
	for i := range parts {
		for j := i + 1; j < len(parts); j++ {
			work += len(parts[i]) * len(parts[j])
		}
	}
	if work > refineBudget {
		return
	}
	partOf := make(map[int]int)
	for pi, part := range parts {
		for _, p := range part {
			partOf[p] = pi
		}
	}
	aff := make(map[int][]float64, len(partOf))
	for p := range partOf {
		row := make([]float64, len(parts))
		for _, e := range m.Row(p) {
			if pi, ok := partOf[e.Col]; ok {
				row[pi] += e.W
			}
		}
		aff[p] = row
	}

	const maxPasses = 8
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for ai := range parts {
			for bi := ai + 1; bi < len(parts); bi++ {
				for {
					bestGain := 0.0
					bestA, bestB := -1, -1
					for _, a := range parts[ai] {
						for _, b := range parts[bi] {
							g := (aff[a][bi] - aff[a][ai]) + (aff[b][ai] - aff[b][bi]) - 2*m.Affinity(a, b)
							if g > bestGain+1e-12 {
								bestGain, bestA, bestB = g, a, b
							}
						}
					}
					if bestA < 0 {
						break
					}
					refSwap(parts, partOf, aff, m, ai, bi, bestA, bestB)
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
}

func refSwap(parts [][]int, partOf map[int]int, aff map[int][]float64, m *Matrix, ai, bi, a, b int) {
	replace := func(part []int, old, new int) {
		for i, p := range part {
			if p == old {
				part[i] = new
				return
			}
		}
	}
	replace(parts[ai], a, b)
	replace(parts[bi], b, a)
	partOf[a], partOf[b] = bi, ai
	for _, e := range m.Row(a) {
		if _, ok := partOf[e.Col]; ok && e.Col != b {
			aff[e.Col][ai] -= e.W
			aff[e.Col][bi] += e.W
		}
	}
	for _, e := range m.Row(b) {
		if _, ok := partOf[e.Col]; ok && e.Col != a {
			aff[e.Col][bi] -= e.W
			aff[e.Col][ai] += e.W
		}
	}
}
