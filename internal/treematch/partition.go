package treematch

import (
	"runtime"
	"sort"
	"sync"
)

// This file holds the dense partitioning kernel behind MapTree. It computes
// exactly the same placements as the original map-based greedy (the
// reference copy lives in reference_test.go) but with slice-indexed state:
//
//   - the greedy claim loop selects the next process with a lazy max-heap
//     keyed by the GGGP score instead of an O(n) scan over four maps, so
//     growing all parts of one tree level is O((n + m) log n) rather than
//     O(k·cap·n) with hashing on every probe;
//   - refineSwaps keeps its incremental part-affinity table in a flat
//     []float64 indexed by local process index and replaces the per-pair
//     binary searches of Matrix.Affinity with a dense scratch row;
//   - above refineBudget the old code silently skipped refinement; now a
//     capped pass refines the heaviest-cut part pairs within the budget and
//     reports the degradation through OnRefineDegrade;
//   - sibling subtrees are assigned in parallel by a bounded worker pool
//     (subproblems are independent after partition returns).

// RefineDegrade describes a refinement pass that exceeded refineBudget and
// fell back to the capped heaviest-pairs-first pass.
type RefineDegrade struct {
	// Procs and Parts identify the subproblem (processes partitioned into
	// parts at one tree node).
	Procs, Parts int
	// Work is the full pairwise swap work Σ|A|·|B|; Budget is the cap it
	// exceeded.
	Work, Budget int
	// PairsRefined and PairsSkipped count the part pairs with nonzero cut
	// affinity that were and were not refined under the budget.
	PairsRefined, PairsSkipped int
}

// OnRefineDegrade, when non-nil, is invoked every time a partition's
// refinement runs in capped mode instead of in full. It may be called
// concurrently from the parallel subtree workers and must be safe for that.
// Callers (the reorder pipeline, the experiment drivers) use it to surface
// quality degradation on very large instances through their telemetry or
// logging; the process-wide variable should be set before mapping starts.
var OnRefineDegrade func(RefineDegrade)

// refineBudget bounds the pairwise swap work per subproblem so huge
// instances (Table 1 scale) get the capped heaviest-pairs refinement
// rather than going quadratic. It is a variable only for tests.
var refineBudget = 1 << 24

// maxParallelism bounds the subtree worker pool.
func maxParallelism() int {
	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		p = 1
	}
	return p
}

// parallelThreshold is the smallest subproblem handed to a worker
// goroutine; smaller ones are cheaper to recurse inline.
const parallelThreshold = 256

// mapper carries the shared state of one MapTree invocation: the matrix,
// the output slice (written at disjoint indices by the workers), the
// workspace pool and the worker-slot semaphore.
type mapper struct {
	m   *Matrix
	out []int
	ws  sync.Pool
	sem chan struct{}
	wg  sync.WaitGroup
}

func newMapper(m *Matrix, out []int) *mapper {
	n := m.N()
	mp := &mapper{m: m, out: out, sem: make(chan struct{}, maxParallelism())}
	mp.ws.New = func() any { return newWorkspace(n) }
	return mp
}

// run assigns procs to the tree and waits for every worker.
func (mp *mapper) run(node *treeNode, procs []int) {
	mp.assign(node, procs)
	mp.wg.Wait()
}

// treeNode is an alias boundary so partition.go does not import topology
// directly; MapTree converts. (See treematch.go.)

// assign recursively maps procs onto node's leaves, spawning workers for
// large sibling subtrees.
func (mp *mapper) assign(node *treeNode, procs []int) {
	if node.Children == nil {
		mp.out[procs[0]] = node.Leaf
		return
	}
	caps := make([]int, len(node.Children))
	for i, c := range node.Children {
		caps[i] = c.Cap
	}
	ws := mp.ws.Get().(*workspace)
	parts := ws.partition(mp.m, procs, caps)
	mp.ws.Put(ws)
	for i, c := range node.Children {
		child, part := c, parts[i]
		if len(part) >= parallelThreshold {
			select {
			case mp.sem <- struct{}{}:
				mp.wg.Add(1)
				go func() {
					defer mp.wg.Done()
					defer func() { <-mp.sem }()
					mp.assign(child, part)
				}()
				continue
			default:
			}
		}
		mp.assign(child, part)
	}
}

// workspace is the dense per-subproblem state, sized once for the whole
// matrix and reused across partition calls (one workspace per worker).
type workspace struct {
	// local maps a global process id to its index in the current
	// subproblem's procs slice, -1 outside it. procs slices are always
	// ascending, so local index order equals global id order.
	local []int32
	// gain[l] is the affinity of unassigned local process l to the part
	// currently being grown; total[l] its affinity to the still-unassigned
	// processes of the subproblem.
	gain, total []float64
	assigned    []bool
	// touched lists local indices with nonzero gain for the current part.
	touched []int32
	heap    gainHeap
	// refine scratch: partOf by local index, aff the flat |procs|·k
	// part-affinity table, rowW and scratch dense affinity rows (kept
	// zeroed between uses).
	partOf  []int32
	rowW    []float64
	scratch []float64
	aff     []float64
}

func newWorkspace(n int) *workspace {
	ws := &workspace{
		local:    make([]int32, n),
		gain:     make([]float64, n),
		total:    make([]float64, n),
		assigned: make([]bool, n),
		partOf:   make([]int32, n),
		rowW:     make([]float64, n),
		scratch:  make([]float64, n),
	}
	for i := range ws.local {
		ws.local[i] = -1
	}
	return ws
}

// heapEntry is one lazy-heap candidate: the process and the (score, gain)
// it was pushed with. Entries are validated against the current values on
// pop; stale ones are discarded.
type heapEntry struct {
	score, gain float64
	p           int32
}

// gainHeap is a max-heap ordered by (score desc, gain desc, p asc) — the
// exact selection order of the reference greedy loop.
type gainHeap []heapEntry

func heapBetter(a, b heapEntry) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	return a.p < b.p
}

func (h *gainHeap) push(e heapEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapBetter(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *gainHeap) pop() heapEntry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(s) && heapBetter(s[l], s[best]) {
			best = l
		}
		if r < len(s) && heapBetter(s[r], s[best]) {
			best = r
		}
		if best == i {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return top
}

// partition splits procs into len(caps) parts with |part[i]| = caps[i],
// keeping high affinities inside parts: greedy graph growing (each part is
// grown by the unassigned process maximizing affinity-to-part minus
// affinity-to-outside, the GGGP criterion) followed by the bounded
// Kernighan-Lin swap refinement between part pairs.
func (ws *workspace) partition(m *Matrix, procs []int, caps []int) [][]int {
	k := len(caps)
	parts := make([][]int, k)
	if k == 1 {
		parts[0] = procs
		return parts
	}

	local := ws.local
	for i, p := range procs {
		local[p] = int32(i)
	}
	heap := ws.heap[:0]
	for i, p := range procs {
		var s float64
		for _, e := range m.Row(p) {
			if local[e.Col] >= 0 {
				s += e.W
			}
		}
		ws.total[i] = s
		ws.gain[i] = 0
		ws.assigned[i] = false
		heap = append(heap, heapEntry{score: -s, gain: 0, p: int32(p)})
	}
	// Heapify the initial batch in O(n).
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(heap, i)
	}
	ws.heap = heap
	ws.touched = ws.touched[:0]

	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if caps[order[a]] != caps[order[b]] {
			return caps[order[a]] > caps[order[b]]
		}
		return order[a] < order[b]
	})

	for _, pi := range order {
		want := caps[pi]
		part := make([]int, 0, want)
		for len(part) < want {
			best := ws.popBest()
			li := local[best]
			ws.assigned[li] = true
			part = append(part, best)
			// Claiming best removes it from its neighbours' remaining
			// totals and adds its affinity to their gain toward this part.
			for _, e := range m.Row(best) {
				l := local[e.Col]
				if l < 0 || ws.assigned[l] {
					continue
				}
				ws.total[l] -= e.W
				if ws.gain[l] == 0 {
					ws.touched = append(ws.touched, l)
				}
				ws.gain[l] += e.W
				g := ws.gain[l]
				ws.heap.push(heapEntry{score: g - (ws.total[l] - g), gain: g, p: int32(e.Col)})
			}
		}
		parts[pi] = part
		// The next part starts from zero gain: reset the processes this
		// part touched and re-key them in the heap.
		for _, l := range ws.touched {
			if ws.assigned[l] || ws.gain[l] == 0 {
				ws.gain[l] = 0
				continue
			}
			ws.gain[l] = 0
			ws.heap.push(heapEntry{score: -ws.total[l], gain: 0, p: int32(procs[l])})
		}
		ws.touched = ws.touched[:0]
	}

	ws.refineSwaps(m, procs, parts)

	for _, p := range procs {
		local[p] = -1
	}
	for _, part := range parts {
		sort.Ints(part)
	}
	return parts
}

func siftDown(s []heapEntry, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(s) && heapBetter(s[l], s[best]) {
			best = l
		}
		if r < len(s) && heapBetter(s[r], s[best]) {
			best = r
		}
		if best == i {
			return
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
}

// popBest pops heap entries until one reflects the current (score, gain) of
// an unassigned process. Every state change pushes a fresh entry, so the
// first value-consistent entry is the true maximum.
func (ws *workspace) popBest() int {
	for {
		e := ws.heap.pop()
		l := ws.local[e.p]
		if l < 0 || ws.assigned[l] {
			continue
		}
		g := ws.gain[l]
		score := g - (ws.total[l] - g)
		if e.gain == g && e.score == score {
			return int(e.p)
		}
	}
}

// refineSwaps improves a capacity-respecting partition by repeatedly
// applying the best single swap of two processes between two parts while it
// reduces the cut (a bounded Kernighan-Lin pass per part pair). Within
// refineBudget it reproduces the reference pass structure exactly; above it
// the capped heaviest-pairs pass runs instead.
func (ws *workspace) refineSwaps(m *Matrix, procs []int, parts [][]int) {
	k := len(parts)
	work := 0
	for i := range parts {
		for j := i + 1; j < len(parts); j++ {
			work += len(parts[i]) * len(parts[j])
		}
	}
	local := ws.local
	for pi, part := range parts {
		for _, p := range part {
			ws.partOf[local[p]] = int32(pi)
		}
	}
	if work > refineBudget {
		ws.refineCapped(m, procs, parts, work)
		return
	}

	// aff[l*k+pi] = affinity of local process l to part pi.
	n := len(procs)
	if cap(ws.aff) < n*k {
		ws.aff = make([]float64, n*k)
	}
	aff := ws.aff[:n*k]
	for i, p := range procs {
		row := aff[i*k : (i+1)*k]
		for j := range row {
			row[j] = 0
		}
		for _, e := range m.Row(p) {
			if l := local[e.Col]; l >= 0 {
				row[ws.partOf[l]] += e.W
			}
		}
	}

	const maxPasses = 8
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for ai := range parts {
			for bi := ai + 1; bi < len(parts); bi++ {
				if m.nonneg && !ws.pairHasCut(aff, k, parts, ai, bi) {
					// With nonnegative affinities a pair with no cut
					// affinity admits no improving swap: every gain is
					// -aff[a][ai]-aff[b][bi]-2w ≤ 0. Skipping it cannot
					// change the result.
					continue
				}
				for {
					bestGain := 0.0
					bestA, bestB := -1, -1
					for _, a := range parts[ai] {
						la := local[a]
						affA := aff[int(la)*k:]
						// Dense row of a's affinities, replacing the
						// per-pair Matrix.Affinity binary search.
						for _, e := range m.Row(a) {
							if l := local[e.Col]; l >= 0 {
								ws.rowW[l] = e.W
							}
						}
						base := affA[bi] - affA[ai]
						for _, b := range parts[bi] {
							lb := local[b]
							affB := aff[int(lb)*k:]
							g := base + (affB[ai] - affB[bi]) - 2*ws.rowW[lb]
							if g > bestGain+1e-12 {
								bestGain, bestA, bestB = g, a, b
							}
						}
						for _, e := range m.Row(a) {
							if l := local[e.Col]; l >= 0 {
								ws.rowW[l] = 0
							}
						}
					}
					if bestA < 0 {
						break
					}
					ws.swap(m, aff, k, parts, ai, bi, bestA, bestB)
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
}

// pairHasCut reports whether any member of parts[ai] or parts[bi] has
// affinity to the opposite part.
func (ws *workspace) pairHasCut(aff []float64, k int, parts [][]int, ai, bi int) bool {
	for _, a := range parts[ai] {
		if aff[int(ws.local[a])*k+bi] != 0 {
			return true
		}
	}
	for _, b := range parts[bi] {
		if aff[int(ws.local[b])*k+ai] != 0 {
			return true
		}
	}
	return false
}

// swap exchanges a (in part ai) and b (in part bi), updating partOf and the
// incremental affinity table.
func (ws *workspace) swap(m *Matrix, aff []float64, k int, parts [][]int, ai, bi, a, b int) {
	replace := func(part []int, old, new int) {
		for i, p := range part {
			if p == old {
				part[i] = new
				return
			}
		}
	}
	replace(parts[ai], a, b)
	replace(parts[bi], b, a)
	la, lb := ws.local[a], ws.local[b]
	ws.partOf[la], ws.partOf[lb] = int32(bi), int32(ai)
	for _, e := range m.Row(a) {
		if l := ws.local[e.Col]; l >= 0 && e.Col != b {
			aff[int(l)*k+ai] -= e.W
			aff[int(l)*k+bi] += e.W
		}
	}
	for _, e := range m.Row(b) {
		if l := ws.local[e.Col]; l >= 0 && e.Col != a {
			aff[int(l)*k+bi] -= e.W
			aff[int(l)*k+ai] += e.W
		}
	}
}

// pairCut identifies one part pair and its cut affinity in the capped pass.
type pairCut struct {
	ai, bi int32
	w      float64
}

// refineCapped is the over-budget fallback: instead of silently skipping
// refinement (the old cliff), it refines the part pairs with the heaviest
// cut affinity, heaviest first, until the swap-work budget is spent, then
// reports the degradation through OnRefineDegrade. Each pair is refined
// with pair-local affinity state, so memory stays O(n + pairs) even when
// n·k would be enormous.
func (ws *workspace) refineCapped(m *Matrix, procs []int, parts [][]int, work int) {
	local, partOf := ws.local, ws.partOf
	// Cut affinity per part pair, from one sweep over the edges.
	cuts := make(map[int64]float64)
	for _, p := range procs {
		lp := local[p]
		for _, e := range m.Row(p) {
			lq := local[e.Col]
			if lq < 0 || e.Col <= p {
				continue
			}
			pa, pb := partOf[lp], partOf[lq]
			if pa == pb {
				continue
			}
			if pa > pb {
				pa, pb = pb, pa
			}
			cuts[int64(pa)<<32|int64(pb)] += e.W
		}
	}
	pairs := make([]pairCut, 0, len(cuts))
	for key, w := range cuts {
		pairs = append(pairs, pairCut{ai: int32(key >> 32), bi: int32(key & 0xffffffff), w: w})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].w != pairs[j].w {
			return pairs[i].w > pairs[j].w
		}
		if pairs[i].ai != pairs[j].ai {
			return pairs[i].ai < pairs[j].ai
		}
		return pairs[i].bi < pairs[j].bi
	})

	budget := refineBudget
	refined := 0
	for _, pc := range pairs {
		cost := len(parts[pc.ai]) * len(parts[pc.bi])
		if cost > budget {
			break
		}
		spent := ws.refinePair(m, parts, int(pc.ai), int(pc.bi), budget)
		budget -= spent
		refined++
	}
	if hook := OnRefineDegrade; hook != nil {
		hook(RefineDegrade{
			Procs:        len(procs),
			Parts:        len(parts),
			Work:         work,
			Budget:       refineBudget,
			PairsRefined: refined,
			PairsSkipped: len(pairs) - refined,
		})
	}
}

// refinePair runs the best-swap loop on one part pair with pair-local
// affinity state (affinity of each member to part A and to part B). It
// returns the scan work consumed, never exceeding budget. It borrows three
// zeroed workspace arrays — gain (affinity to A), rowW (affinity to B) and
// scratch (a dense affinity row) — and re-zeroes them before returning.
func (ws *workspace) refinePair(m *Matrix, parts [][]int, ai, bi, budget int) int {
	local, partOf := ws.local, ws.partOf
	toA, toB, row := ws.gain, ws.rowW, ws.scratch
	A, B := parts[ai], parts[bi]
	members := make([]int, 0, len(A)+len(B))
	members = append(members, A...)
	members = append(members, B...)
	for _, p := range members {
		var a, b float64
		for _, e := range m.Row(p) {
			l := local[e.Col]
			if l < 0 {
				continue
			}
			switch partOf[l] {
			case int32(ai):
				a += e.W
			case int32(bi):
				b += e.W
			}
		}
		toA[local[p]] = a
		toB[local[p]] = b
	}
	spent := 0
	for {
		if spent+len(A)*len(B) > budget {
			break
		}
		spent += len(A) * len(B)
		bestGain := 0.0
		bestA, bestB := -1, -1
		for _, a := range A {
			la := local[a]
			for _, e := range m.Row(a) {
				if l := local[e.Col]; l >= 0 {
					row[l] = e.W
				}
			}
			base := toB[la] - toA[la]
			for _, b := range B {
				lb := local[b]
				g := base + (toA[lb] - toB[lb]) - 2*row[lb]
				if g > bestGain+1e-12 {
					bestGain, bestA, bestB = g, a, b
				}
			}
			for _, e := range m.Row(a) {
				if l := local[e.Col]; l >= 0 {
					row[l] = 0
				}
			}
		}
		if bestA < 0 {
			break
		}
		// Apply the swap on the pair-local state.
		replace := func(part []int, old, new int) {
			for i, p := range part {
				if p == old {
					part[i] = new
					return
				}
			}
		}
		replace(A, bestA, bestB)
		replace(B, bestB, bestA)
		la, lb := local[bestA], local[bestB]
		partOf[la], partOf[lb] = int32(bi), int32(ai)
		for _, e := range m.Row(bestA) {
			l := local[e.Col]
			if l < 0 || e.Col == bestB {
				continue
			}
			switch partOf[l] {
			case int32(ai), int32(bi):
				toA[l] -= e.W
				toB[l] += e.W
			}
		}
		for _, e := range m.Row(bestB) {
			l := local[e.Col]
			if l < 0 || e.Col == bestA {
				continue
			}
			switch partOf[l] {
			case int32(ai), int32(bi):
				toB[l] -= e.W
				toA[l] += e.W
			}
		}
		// The swapped processes' own affinities flip sides.
		toA[la], toB[la] = toB[la], toA[la]
		toA[lb], toB[lb] = toB[lb], toA[lb]
	}
	// Zero the borrowed arrays for the next user.
	for _, p := range members {
		toA[local[p]] = 0
		toB[local[p]] = 0
	}
	return spent
}
