package treematch

import (
	"math/rand"
	"testing"

	"mpimon/internal/sparsemat"
	"mpimon/internal/topology"
)

// randTraffic builds a random dense counts/bytes pair with assorted holes:
// absent entries, count-only entries (bytes 0), and heavy asymmetric pairs.
func randTraffic(rng *rand.Rand, n int) (counts, bytes []uint64) {
	counts = make([]uint64, n*n)
	bytes = make([]uint64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			switch rng.Intn(4) {
			case 0: // no traffic at all
			case 1: // count-only (e.g. zero-byte sends)
				counts[i*n+j] = uint64(rng.Intn(5) + 1)
			default:
				counts[i*n+j] = uint64(rng.Intn(20) + 1)
				bytes[i*n+j] = uint64(rng.Intn(1 << 20))
			}
		}
	}
	return counts, bytes
}

func sameDense(t *testing.T, a, b *Matrix) {
	t.Helper()
	da, db := a.Dense(), b.Dense()
	if len(da) != len(db) {
		t.Fatalf("size mismatch: %d vs %d", len(da), len(db))
	}
	for i := range da {
		for j := range da[i] {
			if da[i][j] != db[i][j] {
				t.Fatalf("affinity (%d,%d): dense %v, sparse %v", i, j, da[i][j], db[i][j])
			}
		}
	}
}

// TestFromSparseRowsBitIdentical pins the acceptance criterion that the
// sparse construction path produces bit-identical affinities — and hence
// identical TreeMatch placements — to FromBytesMatrix on the densified
// matrix, including matrices with zero-byte nonzero-count entries.
func TestFromSparseRowsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	topo, err := topology.New(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		n := 8
		counts, bytes := randTraffic(rng, n)
		dense, err := FromBytesMatrix(bytes, n)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := sparsemat.FromDense(counts, bytes, n)
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := FromSparseRows(sm)
		if err != nil {
			t.Fatal(err)
		}
		sameDense(t, dense, sparse)

		pd, err := MapTree(dense, topo.FullTree())
		if err != nil {
			t.Fatal(err)
		}
		ps, err := MapTree(sparse, topo.FullTree())
		if err != nil {
			t.Fatal(err)
		}
		for i := range pd {
			if pd[i] != ps[i] {
				t.Fatalf("trial %d: placement diverged at %d: %v vs %v", trial, i, pd, ps)
			}
		}
	}
}

func TestFromSparseRowsPadded(t *testing.T) {
	bytes := []uint64{0, 100, 100, 0}
	dense4 := make([]uint64, 16)
	dense4[0*4+1], dense4[1*4+0] = 100, 100
	want, err := FromBytesMatrix(dense4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := sparsemat.FromDense([]uint64{0, 1, 1, 0}, bytes, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromSparseRowsPadded(sm, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameDense(t, want, got)
	if _, err := FromSparseRowsPadded(sm, 1); err == nil {
		t.Fatal("padding below matrix size accepted")
	}
}

func TestFromSparseRowsRejectsCorrupt(t *testing.T) {
	sm := &sparsemat.Matrix{N: 2, Rows: []sparsemat.Row{{Dst: []int32{5}, Cnt: []uint64{1}, Byt: []uint64{1}}, {}}}
	if _, err := FromSparseRows(sm); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
	if _, err := FromSparseRows(&sparsemat.Matrix{N: 3, Rows: make([]sparsemat.Row, 2)}); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
}
