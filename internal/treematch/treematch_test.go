package treematch

import (
	"math"
	"testing"
	"testing/quick"

	"mpimon/internal/topology"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(4)
	m.Add(0, 1, 5)
	m.Add(1, 0, 3) // accumulates symmetrically
	m.Add(2, 3, 7)
	m.Add(1, 1, 100) // diagonal ignored
	m.Finish()
	if got := m.Affinity(0, 1); got != 8 {
		t.Fatalf("Affinity(0,1) = %v, want 8", got)
	}
	if got := m.Affinity(1, 0); got != 8 {
		t.Fatalf("Affinity(1,0) = %v, want 8 (symmetry)", got)
	}
	if got := m.Affinity(0, 2); got != 0 {
		t.Fatalf("Affinity(0,2) = %v, want 0", got)
	}
	if got := m.Affinity(1, 1); got != 0 {
		t.Fatalf("diagonal = %v, want 0", got)
	}
	if got := m.TotalWeight(); got != 15 {
		t.Fatalf("TotalWeight = %v, want 15", got)
	}
	if got := m.Degree(1); got != 1 {
		t.Fatalf("Degree(1) = %d, want 1", got)
	}
}

func TestFromBytesMatrix(t *testing.T) {
	// 2x2: 0 sends 10 to 1, 1 sends 30 to 0.
	m, err := FromBytesMatrix([]uint64{0, 10, 30, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Affinity(0, 1); got != 40 {
		t.Fatalf("affinity = %v, want 40", got)
	}
	if _, err := FromBytesMatrix([]uint64{1, 2, 3}, 2); err == nil {
		t.Fatal("wrong matrix size should fail")
	}
}

func TestDense(t *testing.T) {
	m := NewMatrix(3)
	m.Add(0, 2, 4)
	d := m.Dense()
	if d[0][2] != 4 || d[2][0] != 4 || d[0][1] != 0 {
		t.Fatalf("Dense = %v", d)
	}
}

// twoClusters returns a matrix where {0,1} and {2,3} are tightly coupled
// pairs, with weak cross traffic.
func twoClusters() *Matrix {
	m := NewMatrix(4)
	m.Add(0, 1, 100)
	m.Add(2, 3, 100)
	m.Add(0, 2, 1)
	m.Finish()
	return m
}

func TestMapTreeColocatesClusters(t *testing.T) {
	topo := topology.MustNew(2, 2) // 2 nodes of 2 cores
	m := twoClusters()
	coreOf, err := MapTree(m, topo.FullTree())
	if err != nil {
		t.Fatal(err)
	}
	if !topo.SameNode(coreOf[0], coreOf[1]) {
		t.Fatalf("pair (0,1) split across nodes: %v", coreOf)
	}
	if !topo.SameNode(coreOf[2], coreOf[3]) {
		t.Fatalf("pair (2,3) split across nodes: %v", coreOf)
	}
	if topo.SameNode(coreOf[0], coreOf[2]) {
		t.Fatalf("both pairs on one node: %v", coreOf)
	}
}

func TestMapTreeIsPermutation(t *testing.T) {
	topo := topology.MustNew(2, 2, 2)
	f := func(seed int64) bool {
		m := NewMatrix(8)
		rng := newRand(seed)
		for e := 0; e < 12; e++ {
			i, j := rng.next()%8, rng.next()%8
			if i != j {
				m.Add(int(i), int(j), float64(rng.next()%100+1))
			}
		}
		m.Finish()
		coreOf, err := MapTree(m, topo.FullTree())
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, c := range coreOf {
			if c < 0 || c >= 8 || seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// newRand is a tiny deterministic generator for property tests.
type miniRand struct{ s uint64 }

func newRand(seed int64) *miniRand {
	return &miniRand{s: uint64(seed)*2862933555777941757 + 3037000493}
}

func (r *miniRand) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 33
}

func TestMapTreeSizeMismatch(t *testing.T) {
	topo := topology.MustNew(2, 2)
	m := NewMatrix(3)
	if _, err := MapTree(m, topo.FullTree()); err == nil {
		t.Fatal("process/leaf count mismatch should fail")
	}
}

func TestMapTreeOnRestrictedTree(t *testing.T) {
	// 3 nodes x 4 cores; only 8 specific cores available. Two 4-process
	// clusters must land on the nodes owning 4 free cores each.
	topo := topology.MustNew(3, 4)
	occupied := []int{0, 1, 2, 3, 8, 9, 10, 11} // nodes 0 and 2
	tree, err := topo.Restrict(occupied)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatrix(8)
	for _, grp := range [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		for a := 0; a < 4; a++ {
			for b := a + 1; b < 4; b++ {
				m.Add(grp[a], grp[b], 50)
			}
		}
	}
	m.Add(0, 4, 1)
	m.Finish()
	coreOf, err := MapTree(m, tree)
	if err != nil {
		t.Fatal(err)
	}
	for p, c := range coreOf {
		found := false
		for _, o := range occupied {
			if c == o {
				found = true
			}
		}
		if !found {
			t.Fatalf("process %d placed on unavailable core %d", p, c)
		}
	}
	n0 := topo.NodeOf(coreOf[0])
	for p := 1; p < 4; p++ {
		if topo.NodeOf(coreOf[p]) != n0 {
			t.Fatalf("cluster 1 split: %v", coreOf)
		}
	}
	n4 := topo.NodeOf(coreOf[4])
	for p := 5; p < 8; p++ {
		if topo.NodeOf(coreOf[p]) != n4 {
			t.Fatalf("cluster 2 split: %v", coreOf)
		}
	}
	if n0 == n4 {
		t.Fatalf("both clusters on node %d", n0)
	}
}

func TestMapBalancedColocates(t *testing.T) {
	topo := topology.MustNew(2, 2)
	coreOf, err := MapBalanced(twoClusters(), topo)
	if err != nil {
		t.Fatal(err)
	}
	if !topo.SameNode(coreOf[0], coreOf[1]) || !topo.SameNode(coreOf[2], coreOf[3]) {
		t.Fatalf("MapBalanced split a pair: %v", coreOf)
	}
}

func TestMapBalancedTooManyProcs(t *testing.T) {
	topo := topology.MustNew(2)
	if _, err := MapBalanced(NewMatrix(3), topo); err == nil {
		t.Fatal("more processes than leaves should fail")
	}
}

func TestMapBalancedFewerProcsThanLeaves(t *testing.T) {
	topo := topology.MustNew(2, 4)
	m := NewMatrix(6)
	m.Add(0, 1, 10)
	m.Add(4, 5, 10)
	m.Finish()
	coreOf, err := MapBalanced(m, topo)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range coreOf {
		if c < 0 || c >= 8 || seen[c] {
			t.Fatalf("invalid placement %v", coreOf)
		}
		seen[c] = true
	}
}

// bruteForceCost finds the optimal placement cost by trying all
// permutations (tiny instances only).
func bruteForceCost(m *Matrix, topo *topology.Topology) float64 {
	n := m.N()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if c := Cost(m, perm, topo); c < best {
				best = c
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func TestGreedyNearOptimalOnSmallInstances(t *testing.T) {
	topo := topology.MustNew(2, 2)
	for seed := int64(1); seed <= 10; seed++ {
		m := NewMatrix(4)
		rng := newRand(seed)
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				m.Add(i, j, float64(rng.next()%50))
			}
		}
		m.Finish()
		coreOf, err := MapTree(m, topo.FullTree())
		if err != nil {
			t.Fatal(err)
		}
		got := Cost(m, coreOf, topo)
		opt := bruteForceCost(m, topo)
		if got > opt*1.25+1e-9 {
			t.Errorf("seed %d: greedy cost %v, optimal %v (off by more than 25%%)", seed, got, opt)
		}
	}
}

func TestCostOrdering(t *testing.T) {
	topo := topology.MustNew(2, 2)
	m := twoClusters()
	good := []int{0, 1, 2, 3} // pairs co-located
	bad := []int{0, 2, 1, 3}  // pairs split
	if Cost(m, good, topo) >= Cost(m, bad, topo) {
		t.Fatalf("cost does not order placements: good %v vs bad %v",
			Cost(m, good, topo), Cost(m, bad, topo))
	}
}

func TestPlacements(t *testing.T) {
	topo := topology.MustNew(4, 6) // 4 nodes x 6 cores
	packed := PlacementPacked(10)
	for i, c := range packed {
		if c != i {
			t.Fatalf("packed[%d] = %d", i, c)
		}
	}
	rr, err := PlacementRoundRobin(8, topo)
	if err != nil {
		t.Fatal(err)
	}
	// Ranks 0..3 on nodes 0..3, ranks 4..7 again on nodes 0..3.
	for i, c := range rr {
		if topo.NodeOf(c) != i%4 {
			t.Fatalf("rr[%d] on node %d, want %d", i, topo.NodeOf(c), i%4)
		}
	}
	if _, err := PlacementRoundRobin(25, topo); err == nil {
		t.Fatal("rr with too many ranks should fail")
	}
	rnd, err := PlacementRandom(10, topo, 42)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range rnd {
		if c < 0 || c >= 12 || seen[c] { // 10 ranks need 2 nodes = 12 cores
			t.Fatalf("random placement invalid: %v", rnd)
		}
		seen[c] = true
	}
	rnd2, _ := PlacementRandom(10, topo, 42)
	for i := range rnd {
		if rnd[i] != rnd2[i] {
			t.Fatal("random placement not deterministic for a fixed seed")
		}
	}
	if _, err := PlacementRandom(99, topo, 1); err == nil {
		t.Fatal("random with too many ranks should fail")
	}
}

func TestMapTreeReducesCostVersusBaselines(t *testing.T) {
	// Clustered traffic on a 4x6 machine: TreeMatch must beat round-robin.
	topo := topology.MustNew(4, 6)
	m := NewMatrix(24)
	for c := 0; c < 4; c++ {
		for a := 0; a < 6; a++ {
			for b := a + 1; b < 6; b++ {
				m.Add(6*c+a, 6*c+b, 100)
			}
		}
	}
	m.Finish()
	tm, err := MapTree(m, topo.FullTree())
	if err != nil {
		t.Fatal(err)
	}
	rr, err := PlacementRoundRobin(24, topo)
	if err != nil {
		t.Fatal(err)
	}
	ctm, crr := Cost(m, tm, topo), Cost(m, rr, topo)
	if ctm >= crr {
		t.Fatalf("TreeMatch cost %v not better than round-robin %v", ctm, crr)
	}
	// For this block-diagonal matrix the packed placement is optimal
	// (every cluster on one node); TreeMatch must match it exactly.
	if cpacked := Cost(m, PlacementPacked(24), topo); ctm != cpacked {
		t.Fatalf("TreeMatch cost %v, want the packed optimum %v", ctm, cpacked)
	}
}

func TestMapTreeHierarchicalOnMultiSwitch(t *testing.T) {
	// Two 8-process communities, each made of two tightly-coupled
	// 4-process teams: TreeMatch must put each community under one
	// switch and each team on one node.
	topo, err := topology.NewWithNodeDepth(2, 2, 2, 4) // 2 switches x 2 nodes x 4 cores
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatrix(16)
	for team := 0; team < 4; team++ {
		base := team * 4
		for a := 0; a < 4; a++ {
			for b := a + 1; b < 4; b++ {
				m.Add(base+a, base+b, 100)
			}
		}
	}
	// Communities: teams (0,1) and (2,3) exchange moderately.
	for _, pair := range [][2]int{{0, 1}, {2, 3}} {
		for a := 0; a < 4; a++ {
			m.Add(pair[0]*4+a, pair[1]*4+a, 10)
		}
	}
	m.Finish()
	coreOf, err := MapTree(m, topo.FullTree())
	if err != nil {
		t.Fatal(err)
	}
	for team := 0; team < 4; team++ {
		node := topo.NodeOf(coreOf[team*4])
		for i := 1; i < 4; i++ {
			if topo.NodeOf(coreOf[team*4+i]) != node {
				t.Fatalf("team %d split across nodes: %v", team, coreOf)
			}
		}
	}
	for _, pair := range [][2]int{{0, 1}, {2, 3}} {
		sa := topo.AncestorAt(coreOf[pair[0]*4], 1)
		sb := topo.AncestorAt(coreOf[pair[1]*4], 1)
		if sa != sb {
			t.Fatalf("community (%d,%d) split across switches: %v", pair[0], pair[1], coreOf)
		}
	}
}

func TestOptimalMapOracle(t *testing.T) {
	topo := topology.MustNew(2, 2, 2)
	for seed := int64(1); seed <= 6; seed++ {
		m := NewMatrix(8)
		rng := newRand(seed)
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				if rng.next()%3 == 0 {
					m.Add(i, j, float64(rng.next()%40+1))
				}
			}
		}
		m.Finish()
		opt, optCost, err := OptimalMap(m, topo)
		if err != nil {
			t.Fatal(err)
		}
		if got := Cost(m, opt, topo); got != optCost {
			t.Fatalf("oracle cost mismatch: %v vs %v", got, optCost)
		}
		greedy, err := MapTree(m, topo.FullTree())
		if err != nil {
			t.Fatal(err)
		}
		gc := Cost(m, greedy, topo)
		if gc < optCost-1e-9 {
			t.Fatalf("greedy (%v) beat the proven optimum (%v)?!", gc, optCost)
		}
		if gc > optCost*1.5+1e-9 {
			t.Errorf("seed %d: greedy %v vs optimal %v (worse than 1.5x)", seed, gc, optCost)
		}
	}
}

func TestOptimalMapLimits(t *testing.T) {
	if _, _, err := OptimalMap(NewMatrix(11), topology.MustNew(16)); err == nil {
		t.Fatal("n > 10 should be rejected")
	}
	if _, _, err := OptimalMap(NewMatrix(4), topology.MustNew(2)); err == nil {
		t.Fatal("more processes than leaves should be rejected")
	}
}
