package treematch

import (
	"fmt"

	"mpimon/internal/sparsemat"
)

// FromView builds the affinity matrix from any communication-matrix view —
// the unified constructor behind which the historical dense
// (FromBytesMatrix) and sparse (FromSparseRows) entry points now sit. The
// affinity of an unordered pair is float64(i→j bytes) + float64(j→i bytes),
// added when positive; because the view emits the lower-index direction
// first and Finish sorts the result, the matrix is bit-identical to both
// legacy paths. O(nnz) for sparse views, O(n²) for dense ones.
func FromView(v sparsemat.MatrixView) (*Matrix, error) {
	return FromViewPadded(v, v.Order())
}

// FromViewPadded is FromView over a matrix of total ≥ v.Order() processes,
// the extras having no affinity — the zero-padding elastic reconfiguration
// uses to let TreeMatch pick which cores the real ranks occupy.
func FromViewPadded(v sparsemat.MatrixView, total int) (*Matrix, error) {
	if total < v.Order() {
		return nil, fmt.Errorf("treematch: padding %d processes down to %d", v.Order(), total)
	}
	m := NewMatrix(total)
	err := v.VisitPairs(func(i, j int, bij, bji uint64) error {
		if w := float64(bij) + float64(bji); w > 0 {
			m.Add(i, j, w)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	m.Finish()
	return m, nil
}
