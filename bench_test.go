package mpimon

// The benchmark harness: one benchmark per table and figure of the paper
// (scaled-down parameters — run the cmd/exp-* executables for the full
// sweeps), plus ablations of the design choices called out in DESIGN.md
// and micro-benchmarks of the hot paths. Figure benchmarks report the
// reproduced quantities as custom metrics.

import (
	"testing"
	"time"

	"mpimon/internal/coll"
	"mpimon/internal/exp"
	"mpimon/internal/hwcount"
	"mpimon/internal/mpi"
	"mpimon/internal/netsim"
	"mpimon/internal/pml"
	"mpimon/internal/stencil"
	"mpimon/internal/topology"
	"mpimon/internal/treematch"
	"mpimon/internal/workloads"
)

// BenchmarkFig2HWCountersVsMonitoring regenerates Fig. 2: NIC counters vs
// introspection monitoring time series. Metrics: total KB seen by each
// observer and their maximum cumulative divergence.
func BenchmarkFig2HWCountersVsMonitoring(b *testing.B) {
	cfg := exp.DefaultHWCounters
	cfg.Duration = 4 * time.Second
	var res exp.HWCountersResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = exp.HWCounters(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(hwcount.Total(res.HW))/1000, "hw_kb")
	b.ReportMetric(float64(hwcount.Total(res.Mon))/1000, "mon_kb")
	b.ReportMetric(float64(res.MaxLagBytes)/1000, "max_lag_kb")
}

// BenchmarkFig3Cumulative regenerates Fig. 3 (the cumulative view of the
// same series); the metric is the final cumulative divergence in KB,
// which the paper reports as "barely visible".
func BenchmarkFig3Cumulative(b *testing.B) {
	cfg := exp.DefaultHWCounters
	cfg.Duration = 4 * time.Second
	var lag float64
	for i := 0; i < b.N; i++ {
		res, err := exp.HWCounters(cfg)
		if err != nil {
			b.Fatal(err)
		}
		hw := hwcount.Cumulative(res.HW)
		mon := hwcount.Cumulative(res.Mon)
		lag = float64(hw[len(hw)-1].Bytes-mon[len(mon)-1].Bytes) / 1000
	}
	b.ReportMetric(lag, "final_divergence_kb")
}

// BenchmarkFig4Overhead regenerates Fig. 4: the monitoring overhead on a
// small reduce (real wall time). Metric: the mean difference in
// microseconds (paper: < 5 us, mostly insignificant).
func BenchmarkFig4Overhead(b *testing.B) {
	cfg := exp.OverheadConfig{NPs: []int{48}, Sizes: []int{1024}, Reps: 60}
	var diff float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Overhead(cfg)
		if err != nil {
			b.Fatal(err)
		}
		diff = rows[0].Welch.Diff
	}
	b.ReportMetric(diff, "overhead_us")
}

// benchCollOpt shares Fig. 5a/5b: metric is the baseline-over-reordered
// speedup of the collective at a large buffer size.
func benchCollOpt(b *testing.B, op string) {
	cfg := exp.CollOptConfig{Op: op, NPs: []int{48}, BufSizes: []int{20000}, Reps: 3}
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.CollectiveOpt(cfg)
		if err != nil {
			b.Fatal(err)
		}
		speedup = rows[0].NoMonMs / rows[0].ReorderMs
	}
	b.ReportMetric(speedup, "speedup_x")
}

// BenchmarkFig5Reduce regenerates Fig. 5a (binary-tree reduce).
func BenchmarkFig5Reduce(b *testing.B) { benchCollOpt(b, "reduce") }

// BenchmarkFig5Bcast regenerates Fig. 5b (binomial-tree broadcast).
func BenchmarkFig5Bcast(b *testing.B) { benchCollOpt(b, "bcast") }

// BenchmarkFig6ReorderGain regenerates two opposite corners of the Fig. 6
// heat map: a small/short cell where the reordering cannot pay off
// (negative gain) and a large/long cell where it clearly does.
func BenchmarkFig6ReorderGain(b *testing.B) {
	cfg := exp.HeatmapConfig{NPs: []int{48}, BufSizes: []int{10, 50000}, Iters: []int{1, 100}}
	var worst, best float64
	for i := 0; i < b.N; i++ {
		cells, err := exp.ReorderHeatmap(cfg)
		if err != nil {
			b.Fatal(err)
		}
		worst, best = cells[0].GainPct, cells[0].GainPct
		for _, c := range cells {
			if c.GainPct < worst {
				worst = c.GainPct
			}
			if c.GainPct > best {
				best = c.GainPct
			}
		}
	}
	b.ReportMetric(best, "best_gain_pct")
	b.ReportMetric(worst, "worst_gain_pct")
}

// BenchmarkFig7CG regenerates one bar of Fig. 7: NAS CG class B on 64
// ranks, round-robin mapping. Metrics: the execution-time and
// communication-time ratios (paper: all > 1, comm up to 1.9).
func BenchmarkFig7CG(b *testing.B) {
	cfg := exp.CGConfig{Classes: []string{"B"}, NPs: []int{64}, Mappings: []string{"rr"}, Niter: 2, Seed: 42}
	var row exp.CGRow
	for i := 0; i < b.N; i++ {
		rows, err := exp.CGReorder(cfg)
		if err != nil {
			b.Fatal(err)
		}
		row = rows[0]
	}
	b.ReportMetric(row.TotalRatio, "total_ratio")
	b.ReportMetric(row.CommRatio, "comm_ratio")
}

// BenchmarkTable1TreeMatchScale regenerates Table 1 at reduced orders
// (cmd/exp-treematch-scale runs the full 8192-65536 sweep).
func BenchmarkTable1TreeMatchScale(b *testing.B) {
	for _, order := range []int{1024, 2048, 4096} {
		b.Run(itoa(order), func(b *testing.B) {
			m := workloads.ClusteredSparse(order, 32, 1000, 1, 7)
			topo := topology.MustNew(order/32, 2, 16)
			tree := topo.FullTree()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := treematch.MapTree(m, tree); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGatherSparse measures the sparse monitoring gathers on stencil
// skeleton worlds of growing size (np = 4096 is the issue's 64x64 grid).
// Metrics: sparse rootgather wire bytes, root peak receive buffer, and
// their ratio below the 16n² bytes the dense path moves.
func BenchmarkGatherSparse(b *testing.B) {
	for _, np := range []int{256, 1024, 4096} {
		b.Run("np"+itoa(np), func(b *testing.B) {
			cfg := exp.DefaultGatherScale
			cfg.NPs = []int{np}
			cfg.Iters = 3
			var row exp.GatherRow
			for i := 0; i < b.N; i++ {
				rows, err := exp.GatherScale(cfg)
				if err != nil {
					b.Fatal(err)
				}
				row = rows[0]
			}
			b.ReportMetric(float64(row.RootWireBytes), "root_wire_B")
			b.ReportMetric(float64(row.RootPeakBytes), "root_peak_B")
			b.ReportMetric(row.RootWireRatio, "dense_over_sparse")
		})
	}
}

// BenchmarkEventEngine measures the discrete-event execution engine on
// monitored stencil worlds up to np = 65536 (the issue's 256x256 grid,
// auto-selected above 8192 ranks), plus the goroutine engine at the
// smallest size for comparison. Metrics: scheduler dispatches, dispatches
// per second of host time, and the live heap with the whole world
// reachable. The TreeMatch mapping is skipped (see
// BenchmarkTable1TreeMatchScale); cmd/exp-engine-scale runs the full
// pipeline.
func BenchmarkEventEngine(b *testing.B) {
	run := func(b *testing.B, np int, engine string) {
		var row exp.EngineRow
		for i := 0; i < b.N; i++ {
			var err error
			_, row, err = exp.StencilWorldSparse(np, 3, 4096, engine)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(row.Events), "events")
		b.ReportMetric(row.EventsPerSec, "events_per_s")
		b.ReportMetric(row.HeapMB, "heap_MB")
	}
	for _, np := range []int{4096, 16384, 65536} {
		b.Run("event/np"+itoa(np), func(b *testing.B) { run(b, np, "event") })
	}
	b.Run("goroutine/np4096", func(b *testing.B) { run(b, 4096, "goroutine") })
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationNoContention disables NIC serialization and re-runs the
// Fig. 6 best cell: without contention, co-locating groups is worth much
// less — the metric shows how much of the gain the contention model
// carries.
func BenchmarkAblationNoContention(b *testing.B) {
	measure := func(contention bool) float64 {
		const np, groups, bytes, iters = 48, 2, 200_000, 10
		mach := netsim.PlaFRIM(2)
		mach.Contention = contention
		rr, err := treematch.PlacementRoundRobin(np, mach.Topo)
		if err != nil {
			b.Fatal(err)
		}
		runIt := func(placement []int) time.Duration {
			w, err := mpi.NewWorld(mach2(mach), np, mpi.WithPlacement(placement))
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Run(func(c *mpi.Comm) error {
				groupSize := c.Size() / groups
				sub, err := c.Split(c.Rank()/groupSize, c.Rank())
				if err != nil {
					return err
				}
				for i := 0; i < iters; i++ {
					if err := sub.AllgatherN(bytes); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			return w.MaxClock()
		}
		spread := runIt(rr)
		packed := runIt(treematch.PlacementPacked(np))
		return float64(spread) / float64(packed)
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = measure(true)
		without = measure(false)
	}
	b.ReportMetric(with, "colocate_speedup_with_contention")
	b.ReportMetric(without, "colocate_speedup_without_contention")
}

// mach2 clones a machine so each world gets fresh NIC state.
func mach2(m *netsim.Machine) *netsim.Machine {
	c := *m
	return &c
}

// BenchmarkAblationAPILevelMonitoring contrasts the paper's central
// feature: a PMPI-style tool sees a broadcast as root-to-everyone (or
// nothing at all below the API), while the pml-level monitoring sees the
// real tree. The metric is the placement cost of reordering with each
// matrix — the decomposed matrix yields the better placement.
func BenchmarkAblationAPILevelMonitoring(b *testing.B) {
	const np = 48
	mach := netsim.PlaFRIM(2)
	topo := mach.Topo
	rr, err := treematch.PlacementRoundRobin(np, topo)
	if err != nil {
		b.Fatal(err)
	}
	// The true pattern of a binomial bcast (what pml monitoring sees).
	truth := treematch.NewMatrix(np)
	vrank := func(r int) int { return r }
	for r := 1; r < np; r++ {
		// parent of r in the binomial tree rooted at 0
		v := vrank(r)
		mask := 1
		for mask <= v {
			mask <<= 1
		}
		mask >>= 1
		truth.Add(r, v&^mask, 1e6)
	}
	truth.Finish()
	// The API-level view: root sent one buffer "to the communicator";
	// the best a PMPI tool can attribute is root -> every rank.
	apiView := treematch.NewMatrix(np)
	for r := 1; r < np; r++ {
		apiView.Add(0, r, 1e6)
	}
	apiView.Finish()

	var costDecomposed, costAPI float64
	for i := 0; i < b.N; i++ {
		place := func(m *treematch.Matrix) []int {
			coreOf, err := treematch.MapTree(m, topo.FullTree())
			if err != nil {
				b.Fatal(err)
			}
			return coreOf
		}
		// Evaluate both placements against the TRUE pattern.
		costDecomposed = treematch.Cost(truth, place(truth), topo)
		costAPI = treematch.Cost(truth, place(apiView), topo)
	}
	base := treematch.Cost(truth, rr, topo)
	b.ReportMetric(costDecomposed/base, "cost_frac_decomposed")
	b.ReportMetric(costAPI/base, "cost_frac_api_level")
}

// BenchmarkAblationReduceAlgorithms compares the two reduce trees in
// virtual time (the paper's Fig. 5a uses the binary tree).
func BenchmarkAblationReduceAlgorithms(b *testing.B) {
	run := func(binomial bool) time.Duration {
		const np = 48
		mach := netsim.PlaFRIM(2)
		w, err := mpi.NewWorld(mach, np)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Run(func(c *mpi.Comm) error {
			send := make([]byte, 1<<20)
			var recv []byte
			if c.Rank() == 0 {
				recv = make([]byte, len(send))
			}
			if binomial {
				return c.ReduceBinomial(send, recv, mpi.Byte, mpi.OpMax, 0)
			}
			return c.Reduce(send, recv, mpi.Byte, mpi.OpMax, 0)
		}); err != nil {
			b.Fatal(err)
		}
		return w.MaxClock()
	}
	var bin, binom time.Duration
	for i := 0; i < b.N; i++ {
		bin = run(false)
		binom = run(true)
	}
	b.ReportMetric(float64(bin)/1e6, "binary_ms")
	b.ReportMetric(float64(binom)/1e6, "binomial_ms")
}

// BenchmarkAblationTreeMatchVariants compares the general top-down
// TreeMatch with the classic bottom-up grouping on a clustered workload:
// placement quality (cost relative to round-robin) and speed.
func BenchmarkAblationTreeMatchVariants(b *testing.B) {
	const n = 192
	topo := topology.MustNew(8, 2, 12)
	m := workloads.Clustered(n, 24, 1000, 1, 2, 11)
	rr, err := treematch.PlacementRoundRobin(n, topo)
	if err != nil {
		b.Fatal(err)
	}
	base := treematch.Cost(m, rr, topo)
	var topDown, bottomUp float64
	b.Run("top-down", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coreOf, err := treematch.MapTree(m, topo.FullTree())
			if err != nil {
				b.Fatal(err)
			}
			topDown = treematch.Cost(m, coreOf, topo) / base
		}
		b.ReportMetric(topDown, "cost_frac_vs_rr")
	})
	b.Run("bottom-up", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coreOf, err := treematch.MapBalanced(m, topo)
			if err != nil {
				b.Fatal(err)
			}
			bottomUp = treematch.Cost(m, coreOf, topo) / base
		}
		b.ReportMetric(bottomUp, "cost_frac_vs_rr")
	})
}

// --- Micro-benchmarks of the hot paths -----------------------------------

// BenchmarkMonitorRecord measures the per-message cost of the pml
// monitoring counter update — the source of the Fig. 4 overhead.
func BenchmarkMonitorRecord(b *testing.B) {
	mon := pml.NewMonitor(256, pml.Distinct)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mon.Record(pml.P2P, i&255, 4096, int64(i))
	}
}

// BenchmarkMonitorRecordDisabled measures the disabled-path cost.
func BenchmarkMonitorRecordDisabled(b *testing.B) {
	mon := pml.NewMonitor(256, pml.Disabled)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mon.Record(pml.P2P, i&255, 4096, int64(i))
	}
}

// BenchmarkPingPong measures the real (host) cost of one simulated
// message round trip, queue and cost model included.
func BenchmarkPingPong(b *testing.B) {
	mach := netsim.PlaFRIM(1)
	w, err := mpi.NewWorld(mach, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = w.Run(func(c *mpi.Comm) error {
		buf := make([]byte, 64)
		other := 1 - c.Rank()
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				if err := c.Send(other, 0, buf); err != nil {
					return err
				}
				if _, err := c.Recv(other, 0, buf); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(other, 0, buf); err != nil {
					return err
				}
				if err := c.Send(other, 0, buf); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCollectives measures the host cost and steady-state allocations
// of one collective round on 48 simulated ranks. The internal payloads of
// the tree/ring algorithms ride the pooled message buffers, so allocs/op
// here is the pool-miss rate of the collective layer.
func BenchmarkCollectives(b *testing.B) {
	const np = 48
	bench := func(b *testing.B, setup func(c *mpi.Comm) func() error) {
		w, err := mpi.NewWorld(netsim.PlaFRIM(2), np)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		if err := w.Run(func(c *mpi.Comm) error {
			iter := setup(c)
			for i := 0; i < b.N; i++ {
				if err := iter(); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("bcast-64KiB", func(b *testing.B) {
		bench(b, func(c *mpi.Comm) func() error {
			buf := make([]byte, 1<<16)
			return func() error { return c.Bcast(buf, 0) }
		})
	})
	b.Run("allreduce-8KiB", func(b *testing.B) {
		bench(b, func(c *mpi.Comm) func() error {
			send := make([]byte, 1<<13)
			recv := make([]byte, 1<<13)
			return func() error { return c.Allreduce(send, recv, mpi.Byte, mpi.OpMax) }
		})
	})
	b.Run("alltoall-1KiB", func(b *testing.B) {
		bench(b, func(c *mpi.Comm) func() error {
			send := make([]byte, np<<10)
			recv := make([]byte, np<<10)
			return func() error { return c.Alltoall(send, recv) }
		})
	})
}

// BenchmarkCGClassSReal measures a full verified class-S NAS CG run on 16
// simulated ranks (real numerics).
func BenchmarkCGClassSReal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := NewWorld(PlaFRIM(1), 16)
		if err != nil {
			b.Fatal(err)
		}
		err = w.Run(func(c *Comm) error {
			res, err := RunCG(c, CGConfig{Class: CGClassS, Mode: CGReal})
			if err != nil {
				return err
			}
			if !res.Verified {
				b.Error("class S did not verify")
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeMatch measures the mapping time on a mid-size matrix.
func BenchmarkTreeMatch(b *testing.B) {
	m := workloads.Clustered(384, 24, 1000, 1, 2, 3)
	topo := topology.MustNew(16, 2, 12)
	tree := topo.FullTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treematch.MapTree(m, tree); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBarrier48 measures the host cost of a 48-rank dissemination
// barrier in the simulated runtime.
func BenchmarkBarrier48(b *testing.B) {
	w, err := mpi.NewWorld(netsim.PlaFRIM(2), 48)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = w.Run(func(c *mpi.Comm) error {
		for i := 0; i < b.N; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStencilSolve measures the host cost of the distributed Jacobi
// solver (48 simulated ranks, 10 sweeps).
func BenchmarkStencilSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := NewWorld(PlaFRIM(2), 48)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Run(func(c *Comm) error {
			_, err := RunStencil(c, StencilConfig{NX: 96, NY: 1024, Iters: 10})
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBcastAlgorithms compares the binomial and the
// scatter-allgather broadcasts in virtual time at a large message size:
// SAG should win on bandwidth.
func BenchmarkAblationBcastAlgorithms(b *testing.B) {
	runOne := func(sag bool) time.Duration {
		w, err := mpi.NewWorld(netsim.PlaFRIM(2), 48)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Run(func(c *mpi.Comm) error {
			buf := make([]byte, 48<<14) // 768 KiB, divisible by 48
			if sag {
				return c.BcastSAG(buf, 0)
			}
			return c.Bcast(buf, 0)
		}); err != nil {
			b.Fatal(err)
		}
		return w.MaxClock()
	}
	var binom, sag time.Duration
	for i := 0; i < b.N; i++ {
		binom = runOne(false)
		sag = runOne(true)
	}
	b.ReportMetric(float64(binom)/1e6, "binomial_ms")
	b.ReportMetric(float64(sag)/1e6, "scatter_allgather_ms")
}

// BenchmarkStencil2DReorder measures the 2D-decomposed Jacobi solver with
// and without the Cartesian reorder flag on a scrambled placement; the
// metric is the communication-time ratio (the MPI_Cart_create(reorder)
// payoff, powered by TreeMatch).
func BenchmarkStencil2DReorder(b *testing.B) {
	const np = 48
	mach := netsim.PlaFRIM(2)
	place := make([]int, np)
	for i := range place {
		place[i] = (i * 19) % 48
	}
	measure := func(reorder bool) time.Duration {
		w, err := mpi.NewWorld(mach2(mach), np, mpi.WithPlacement(place))
		if err != nil {
			b.Fatal(err)
		}
		var comm time.Duration
		if err := w.Run(func(c *mpi.Comm) error {
			res, err := stencil.Run2D(c, stencil.Config{NX: 96, NY: 4096, Iters: 10}, reorder)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				comm = res.CommTime
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		return comm
	}
	var base, opt time.Duration
	for i := 0; i < b.N; i++ {
		base = measure(false)
		opt = measure(true)
	}
	b.ReportMetric(float64(base)/float64(opt), "comm_ratio")
}

// BenchmarkCollPortfolio measures every algorithm of the collective
// portfolio at np=48 on the paper's cluster model — one sub-benchmark per
// (operation, algorithm), reporting the virtual collective time as a
// custom metric so results/BENCH_coll.json tracks the simulated cost next
// to the harness's wall time.
func BenchmarkCollPortfolio(b *testing.B) {
	const np = 48
	const size = 96 << 10 // straddles the eager limit; divisible by np
	for _, op := range coll.Ops() {
		for _, alg := range coll.Algorithms(op) {
			op, alg := op, alg
			b.Run(string(op)+"-"+string(alg), func(b *testing.B) {
				w, err := mpi.NewWorld(netsim.PlaFRIM(2), np)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				if err := w.Run(func(c *mpi.Comm) error {
					for i := 0; i < b.N; i++ {
						if err := coll.Run(c, op, alg, size); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				b.ReportMetric(float64(w.MaxClock().Nanoseconds())/float64(b.N)/1000, "virt_us/op")
			})
		}
	}
}
